//! # cubefit-core
//!
//! Robust online multi-tenant server consolidation, reproducing the
//! **CubeFit** algorithm from *"Robust Multi-Tenant Server Consolidation in
//! the Cloud for Data Analytics Workloads"* (Mate, Daudjee, Kamali —
//! ICDCS 2017).
//!
//! Tenants arrive online, each with a normalized load in `(0, 1]`. Every
//! tenant is replicated `γ` times (each replica carrying `load/γ`) onto `γ`
//! distinct unit-capacity servers so that the simultaneous failure of any
//! `γ − 1` servers never overloads a surviving server. The consolidation
//! objective is to open as few servers as possible.
//!
//! This crate provides:
//!
//! * the placement substrate shared by every algorithm in the workspace —
//!   [`Tenant`]s, [`Load`]s, bins ([`BinId`], [`BinSnapshot`]), the
//!   [`Placement`] state with incremental shared-load bookkeeping, and the
//!   exhaustive robustness checker in [`validity`];
//! * the [`CubeFit`] consolidator itself: size classes, mature-bin *m-fit*
//!   placement (stage 1), cube-addressed slot placement (stage 2), and
//!   multi-replica aggregation for tiny tenants;
//! * the [`Consolidator`] trait that baselines (see `cubefit-baselines`)
//!   implement so that experiment harnesses can drive any algorithm
//!   uniformly;
//! * the differential audit [`oracle`]: a from-scratch reference
//!   recomputation of levels, shared loads and failover reserves, plus
//!   [`AuditedConsolidator`], which cross-checks any algorithm's
//!   incremental bookkeeping after every placement.
//!
//! ## Quickstart
//!
//! ```
//! use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant};
//!
//! # fn main() -> Result<(), cubefit_core::Error> {
//! // Two replicas per tenant, five size classes.
//! let config = CubeFitConfig::builder().replication(2).classes(5).build()?;
//! let mut cubefit = CubeFit::new(config);
//!
//! for load in [0.6, 0.3, 0.6, 0.78, 0.12, 0.36] {
//!     cubefit.place(Tenant::with_load(Load::new(load)?))?;
//! }
//!
//! // The resulting placement survives any single server failure.
//! assert!(cubefit.placement().is_robust());
//! println!("servers used: {}", cubefit.placement().open_bins());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod algorithm;
pub mod atomic_io;
pub mod backend;
pub mod bin;
pub mod class;
pub mod config;
pub mod cube;
pub mod cubefit;
pub mod dump;
pub mod error;
pub mod level_index;
pub mod load;
pub mod mfit;
pub mod monitor;
pub mod multireplica;
pub mod oracle;
pub mod placement;
pub mod recovery;
pub mod render;
pub mod shared;
pub mod smallbuf;
pub mod tenant;
pub mod validity;

pub use algorithm::{
    Consolidator, LoadUpdateOutcome, PlacementOutcome, PlacementStage, RemovalOutcome,
};
pub use atomic_io::write_atomic;
pub use backend::{PlacementBackend, ShardedBackend, SingleBackend, RECONCILE_TOLERANCE};
pub use bin::{BinClass, BinId, BinSnapshot};
pub use class::{Classifier, ReplicaClass};
pub use config::{CubeFitConfig, CubeFitConfigBuilder, Stage1Eligibility, TinyPolicy};
pub use cubefit::CubeFit;
pub use dump::{DumpEntry, PlacementDump};
pub use error::{Error, Result};
pub use load::Load;
pub use monitor::{MonitorReport, ServerHealth, ServerState};
pub use oracle::{AuditedConsolidator, Divergence, DivergenceKind, Oracle, ShardedAuditError};
pub use placement::{FragmentationStats, Placement, PlacementStats};
pub use recovery::RecoveryReport;
pub use tenant::{Tenant, TenantId};
pub use validity::{FailureImpact, RobustnessReport};

/// Tolerance used for floating-point capacity comparisons throughout the
/// workspace.
///
/// All capacity checks are of the form `total ≤ 1 + EPSILON` so that sums
/// that are exactly at capacity (e.g. the worked examples of the paper) are
/// not rejected due to rounding.
pub const EPSILON: f64 = 1e-9;
