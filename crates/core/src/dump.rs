//! Serializable placement dumps.
//!
//! Operators need to persist a placement (which tenant lives on which
//! servers), audit it offline, and hand it to other tools. A
//! [`PlacementDump`] is the portable representation: the replication
//! factor, the number of servers, and each tenant's load and hosting
//! servers, in arrival order. Rebuilding a [`Placement`] from a dump
//! re-derives every internal index (levels, shared loads), so an audit
//! tool can verify robustness from the dump alone.

use crate::bin::BinId;
use crate::error::{Error, Result};
use crate::load::Load;
use crate::placement::Placement;
use crate::tenant::{Tenant, TenantId};

/// One tenant's row in a dump.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DumpEntry {
    /// Tenant id.
    pub tenant: u64,
    /// Tenant load in `(0, 1]`.
    pub load: f64,
    /// Indices of the servers hosting the tenant's replicas.
    pub servers: Vec<usize>,
}

/// A portable snapshot of a placement.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementDump {
    /// Replication factor `γ`.
    pub gamma: usize,
    /// Number of servers ever opened.
    pub servers: usize,
    /// Tenants in arrival order.
    pub tenants: Vec<DumpEntry>,
}

impl PlacementDump {
    /// Snapshots `placement`.
    #[must_use]
    pub fn from_placement(placement: &Placement) -> Self {
        PlacementDump {
            gamma: placement.gamma(),
            servers: placement.created_bins(),
            tenants: placement
                .tenants()
                .map(|(id, load, bins)| DumpEntry {
                    tenant: id.get(),
                    load,
                    servers: bins.iter().map(|b| b.index()).collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a live [`Placement`] (re-deriving levels and shared loads).
    ///
    /// # Errors
    ///
    /// Returns an error if the dump is internally inconsistent: bad loads,
    /// wrong replica counts, duplicate tenants, or server indices beyond
    /// [`Self::servers`].
    pub fn to_placement(&self) -> Result<Placement> {
        if self.gamma < 2 {
            return Err(Error::InvalidReplication { gamma: self.gamma });
        }
        let mut placement = Placement::new(self.gamma);
        for _ in 0..self.servers {
            placement.open_bin(None);
        }
        for entry in &self.tenants {
            let load = Load::new(entry.load)?;
            let bins: Vec<BinId> = entry.servers.iter().map(|&s| BinId::new(s)).collect();
            if entry.servers.iter().any(|&s| s >= self.servers) {
                return Err(Error::InternalInvariant {
                    detail: format!(
                        "tenant {} references server beyond the declared count",
                        entry.tenant
                    ),
                });
            }
            placement.place_tenant(&Tenant::new(TenantId::new(entry.tenant), load), &bins)?;
        }
        Ok(placement)
    }
}

impl From<&Placement> for PlacementDump {
    fn from(placement: &Placement) -> Self {
        PlacementDump::from_placement(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Consolidator;
    use crate::config::CubeFitConfig;
    use crate::cubefit::CubeFit;

    fn sample_placement() -> Placement {
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap());
        for (id, load) in [(0u64, 0.6), (1, 0.3), (2, 0.6), (3, 0.78), (4, 0.12)] {
            cf.place(Tenant::new(TenantId::new(id), Load::new(load).unwrap())).unwrap();
        }
        cf.placement().clone()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = sample_placement();
        let dump = PlacementDump::from_placement(&original);
        let rebuilt = dump.to_placement().unwrap();
        assert_eq!(rebuilt.gamma(), original.gamma());
        assert_eq!(rebuilt.tenant_count(), original.tenant_count());
        assert_eq!(rebuilt.open_bins(), original.open_bins());
        assert!((rebuilt.total_load() - original.total_load()).abs() < 1e-12);
        // Shared loads and robustness re-derive identically.
        for bin in original.bins().filter(|b| !b.is_empty()) {
            assert!(
                (rebuilt.level(bin.id()) - bin.level()).abs() < 1e-12,
                "level mismatch on {}",
                bin.id()
            );
            assert!(
                (rebuilt.worst_failover(bin.id()) - original.worst_failover(bin.id())).abs()
                    < 1e-12
            );
        }
        assert_eq!(rebuilt.is_robust(), original.is_robust());
    }

    #[test]
    fn rejects_inconsistent_dumps() {
        let mut dump = PlacementDump::from_placement(&sample_placement());
        dump.tenants[0].servers[0] = 999;
        assert!(dump.to_placement().is_err());

        let mut dump2 = PlacementDump::from_placement(&sample_placement());
        dump2.tenants[0].load = 2.0;
        assert!(dump2.to_placement().is_err());

        let mut dump3 = PlacementDump::from_placement(&sample_placement());
        dump3.gamma = 1;
        assert!(dump3.to_placement().is_err());

        let mut dump4 = PlacementDump::from_placement(&sample_placement());
        let duplicated = dump4.tenants[0].clone();
        dump4.tenants.push(duplicated);
        assert!(dump4.to_placement().is_err());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_roundtrip() {
        let dump = PlacementDump::from_placement(&sample_placement());
        let json = serde_json::to_string(&dump).unwrap();
        let back: PlacementDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump);
    }
}
