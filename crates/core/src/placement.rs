//! Placement state shared by all consolidation algorithms.

use crate::backend::{PlacementBackend, ShardedBackend, SingleBackend};
use crate::bin::{BinClass, BinData, BinId, BinSnapshot};
use crate::error::{Error, Result};
use crate::tenant::{Tenant, TenantId};
use std::collections::HashMap;

/// A tenant's record inside a placement.
#[derive(Debug, Clone)]
pub(crate) struct TenantRecord {
    /// The tenant's full load (each replica carries `load / γ`).
    pub load: f64,
    /// The `γ` bins hosting the tenant's replicas.
    pub bins: Vec<BinId>,
}

/// The assignment of tenant replicas to bins, with incremental bookkeeping
/// of levels and pairwise shared loads.
///
/// A `Placement` is owned and mutated by a [`crate::Consolidator`]; it can
/// also be driven directly for hand-built scenarios:
///
/// ```
/// use cubefit_core::{Load, Placement, Tenant, TenantId};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let mut placement = Placement::new(2);
/// let (s1, s2) = (placement.open_bin(None), placement.open_bin(None));
/// let tenant = Tenant::new(TenantId::new(0), Load::new(0.6)?);
/// placement.place_tenant(&tenant, &[s1, s2])?;
/// assert_eq!(placement.open_bins(), 2);
/// assert!((placement.level(s1) - 0.3).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Placement {
    gamma: usize,
    bins: Vec<BinData>,
    tenants: HashMap<TenantId, TenantRecord>,
    arrival_order: Vec<TenantId>,
    backend: Box<dyn PlacementBackend>,
    total_load: f64,
    nonempty_bins: usize,
}

impl Clone for Placement {
    fn clone(&self) -> Self {
        Placement {
            gamma: self.gamma,
            bins: self.bins.clone(),
            tenants: self.tenants.clone(),
            arrival_order: self.arrival_order.clone(),
            backend: self.backend.clone_box(),
            total_load: self.total_load,
            nonempty_bins: self.nonempty_bins,
        }
    }
}

impl Placement {
    /// Creates an empty placement with replication factor `gamma`, backed
    /// by the single (unsharded) derived-index backend.
    ///
    /// # Panics
    ///
    /// Panics if `gamma < 2`; algorithms validate their configuration before
    /// constructing placements.
    #[must_use]
    pub fn new(gamma: usize) -> Self {
        assert!(gamma >= 2, "replication factor must be at least 2");
        Placement {
            gamma,
            bins: Vec::new(),
            tenants: HashMap::new(),
            arrival_order: Vec::new(),
            backend: Box::new(SingleBackend::new(gamma)),
            total_load: 0.0,
            nonempty_bins: 0,
        }
    }

    /// Creates an empty placement whose derived indexes are partitioned
    /// across `shards` placement shards (see [`crate::backend`]). A shard
    /// count of 0 or 1 selects the single backend.
    ///
    /// # Panics
    ///
    /// Panics if `gamma < 2`.
    #[must_use]
    pub fn with_shards(gamma: usize, shards: usize) -> Self {
        let mut placement = Placement::new(gamma);
        placement.set_shards(shards);
        placement
    }

    /// Re-partitions the derived-index layer across `shards` placement
    /// shards (0 or 1 selects the single backend), rebuilding per-shard
    /// state from the tenant list.
    ///
    /// Queries answered by the merged view are bit-identical across shard
    /// counts only when the op history is replayed through the backend from
    /// the start (different association orders round differently), so
    /// callers normally re-shard an *empty* placement before driving ops
    /// through it; re-sharding a populated placement is still sound within
    /// the audit tolerance because every derived quantity is recomputed
    /// from the same replica loads.
    pub fn set_shards(&mut self, shards: usize) {
        let mut backend: Box<dyn PlacementBackend> = if shards <= 1 {
            Box::new(SingleBackend::new(self.gamma))
        } else {
            Box::new(ShardedBackend::new(self.gamma, shards))
        };
        for _ in 0..self.bins.len() {
            backend.push_bin();
        }
        for id in &self.arrival_order {
            let record = &self.tenants[id];
            let replica = record.load / self.gamma as f64;
            for (i, &bin) in record.bins.iter().enumerate() {
                backend.add_level(*id, bin, replica);
                for &other in &record.bins[i + 1..] {
                    backend.add_shared(*id, bin, other, replica);
                }
            }
        }
        self.backend = backend;
    }

    /// Number of placement shards in the derived-index backend (1 for the
    /// default single backend).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.backend.shard_count()
    }

    /// The shard owning `tenant`'s derived state (always 0 when unsharded).
    #[must_use]
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        self.backend.shard_of(tenant)
    }

    /// Cross-shard reconciliation check: verifies that per-shard derived
    /// state sums to the merged state within
    /// [`crate::backend::RECONCILE_TOLERANCE`]. Empty means reconciled;
    /// always empty for the single backend.
    #[must_use]
    pub fn reconcile_shards(&self) -> Vec<String> {
        let levels: Vec<f64> = self.bins.iter().map(|b| b.level).collect();
        self.backend.reconcile(&levels)
    }

    /// Enters the backend's deferred-maintenance mode for a mutation batch
    /// (see [`crate::backend`]). Failover-reserve queries are invalid until
    /// [`Self::end_batch`]; levels and shared-load point lookups stay
    /// exact. Callers must pair this with `end_batch` on every path,
    /// including errors.
    pub fn begin_batch(&mut self) {
        self.backend.begin_batch();
    }

    /// Leaves deferred-maintenance mode, rebuilding every dirty failover
    /// cache exactly once.
    pub fn end_batch(&mut self) {
        self.backend.end_batch();
    }

    /// Reserves capacity for `additional` more tenants (batch-placement
    /// fast path: one table growth instead of many).
    pub fn reserve_tenants(&mut self, additional: usize) {
        self.tenants.reserve(additional);
        self.arrival_order.reserve(additional);
    }

    /// Replication factor `γ`.
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Opens a new bin, optionally tagging it with a CubeFit class.
    pub fn open_bin(&mut self, class: Option<BinClass>) -> BinId {
        let id = BinId(self.bins.len());
        self.bins.push(BinData::new(class));
        self.backend.push_bin();
        debug_assert_eq!(self.backend.bin_count(), self.bins.len());
        id
    }

    /// Places all `γ` replicas of `tenant` on the given bins, updating
    /// levels and shared loads.
    ///
    /// # Errors
    ///
    /// * [`Error::DuplicateTenant`] if the tenant was already placed;
    /// * [`Error::InternalInvariant`] if the bin list does not contain
    ///   exactly `γ` distinct, existing bins.
    pub fn place_tenant(&mut self, tenant: &Tenant, bins: &[BinId]) -> Result<()> {
        if self.tenants.contains_key(&tenant.id()) {
            return Err(Error::DuplicateTenant { tenant: tenant.id() });
        }
        if bins.len() != self.gamma {
            return Err(Error::InternalInvariant {
                detail: format!("expected {} bins, got {}", self.gamma, bins.len()),
            });
        }
        for (i, bin) in bins.iter().enumerate() {
            if bin.0 >= self.bins.len() {
                return Err(Error::InternalInvariant { detail: format!("{bin} does not exist") });
            }
            if bins[..i].contains(bin) {
                return Err(Error::InternalInvariant {
                    detail: format!("{bin} listed twice; replicas need distinct servers"),
                });
            }
        }
        let replica = tenant.replica_size(self.gamma);
        for (i, &bin) in bins.iter().enumerate() {
            let data = &mut self.bins[bin.0];
            if data.contents.is_empty() {
                self.nonempty_bins += 1;
            }
            data.level += replica;
            data.contents.push((tenant.id(), replica));
            self.backend.add_level(tenant.id(), bin, replica);
            for &other in &bins[i + 1..] {
                self.backend.add_shared(tenant.id(), bin, other, replica);
            }
        }
        self.total_load += tenant.load().get();
        self.tenants
            .insert(tenant.id(), TenantRecord { load: tenant.load().get(), bins: bins.to_vec() });
        self.arrival_order.push(tenant.id());
        Ok(())
    }

    /// Removes all `γ` replicas of `tenant`, decrementing levels, shared
    /// loads and the total load. Bins the tenant occupied stay open (they
    /// may still host other replicas, and bin ids are stable), but a bin
    /// emptied by the removal stops counting toward [`Self::open_bins`].
    ///
    /// Returns the removed tenant's load and hosting bins so callers
    /// (algorithms with derived indexes) can re-key exactly the affected
    /// bins.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTenant`] if `tenant` is not in the placement.
    pub fn remove_tenant(&mut self, tenant: TenantId) -> Result<(f64, Vec<BinId>)> {
        let record = self.tenants.remove(&tenant).ok_or(Error::UnknownTenant { tenant })?;
        let replica = record.load / self.gamma as f64;
        for (i, &bin) in record.bins.iter().enumerate() {
            let data = &mut self.bins[bin.0];
            data.level = (data.level - replica).max(0.0);
            data.contents.retain(|(id, _)| *id != tenant);
            if data.contents.is_empty() {
                data.level = 0.0;
                self.nonempty_bins -= 1;
            }
            self.backend.add_level(tenant, bin, -replica);
            for &other in &record.bins[i + 1..] {
                self.backend.sub_shared(tenant, bin, other, replica);
            }
        }
        self.total_load = (self.total_load - record.load).max(0.0);
        self.arrival_order.retain(|id| *id != tenant);
        Ok((record.load, record.bins))
    }

    /// Re-estimates `tenant`'s load in place: every one of its `γ` replicas
    /// changes from `old/γ` to `new_load/γ`, shifting bin levels, pairwise
    /// shared loads and the total load incrementally. The hosting bins do
    /// not change — this is the load-drift primitive, not a migration.
    ///
    /// The new load passes the same typed admission validation as
    /// [`crate::Load::new`], so NaN, non-positive and above-capacity values
    /// are rejected with an error in release builds too. Note that a drift
    /// *upward* can push bins past the Theorem-1 reserve; callers watch for
    /// that with [`crate::monitor::classify`] and react with the mitigation
    /// planner rather than this method refusing the update (the load is a
    /// measurement, not a request).
    ///
    /// Returns the previous load and the hosting bins so algorithms with
    /// derived indexes can re-key exactly the affected bins.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidLoad`] if `new_load` is not a finite number in
    ///   `(0, 1]`;
    /// * [`Error::UnknownTenant`] if `tenant` is not in the placement.
    pub fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<(f64, Vec<BinId>)> {
        let new_load = crate::load::Load::new(new_load)?.get();
        let record = self.tenants.get(&tenant).ok_or(Error::UnknownTenant { tenant })?;
        let old_load = record.load;
        let bins = record.bins.clone();
        let delta = (new_load - old_load) / self.gamma as f64;
        for (i, &bin) in bins.iter().enumerate() {
            let data = &mut self.bins[bin.0];
            data.level = (data.level + delta).max(0.0);
            for entry in &mut data.contents {
                if entry.0 == tenant {
                    entry.1 += delta;
                }
            }
            if delta != 0.0 {
                self.backend.add_level(tenant, bin, delta);
                for &other in &bins[i + 1..] {
                    if delta > 0.0 {
                        self.backend.add_shared(tenant, bin, other, delta);
                    } else {
                        self.backend.sub_shared(tenant, bin, other, -delta);
                    }
                }
            }
        }
        self.total_load = (self.total_load - old_load + new_load).max(0.0);
        self.tenants.get_mut(&tenant).expect("checked above").load = new_load;
        Ok((old_load, bins))
    }

    /// Moves one replica of `tenant` from bin `from` to bin `to`, shifting
    /// its level and pairwise shared loads with the tenant's other bins.
    /// This is the recovery primitive: re-homing a replica orphaned by a
    /// server failure without disturbing the tenant's surviving replicas.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownTenant`] if `tenant` is not in the placement;
    /// * [`Error::InternalInvariant`] if `from` does not host the tenant,
    ///   `to` already does (replicas need distinct servers), or `to` does
    ///   not exist.
    pub fn move_replica(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        let record = self.tenants.get(&tenant).ok_or(Error::UnknownTenant { tenant })?;
        if to.0 >= self.bins.len() {
            return Err(Error::InternalInvariant { detail: format!("{to} does not exist") });
        }
        if !record.bins.contains(&from) {
            return Err(Error::InternalInvariant {
                detail: format!("tenant {tenant} has no replica on {from}"),
            });
        }
        if record.bins.contains(&to) {
            return Err(Error::InternalInvariant {
                detail: format!("tenant {tenant} already has a replica on {to}"),
            });
        }
        let replica = record.load / self.gamma as f64;
        let siblings: Vec<BinId> = record.bins.iter().copied().filter(|&b| b != from).collect();
        let source = &mut self.bins[from.0];
        source.level = (source.level - replica).max(0.0);
        source.contents.retain(|(id, _)| *id != tenant);
        if source.contents.is_empty() {
            source.level = 0.0;
            self.nonempty_bins -= 1;
        }
        let target = &mut self.bins[to.0];
        if target.contents.is_empty() {
            self.nonempty_bins += 1;
        }
        target.level += replica;
        target.contents.push((tenant, replica));
        self.backend.add_level(tenant, from, -replica);
        self.backend.add_level(tenant, to, replica);
        for &sibling in &siblings {
            self.backend.sub_shared(tenant, from, sibling, replica);
            self.backend.add_shared(tenant, to, sibling, replica);
        }
        let record = self.tenants.get_mut(&tenant).expect("checked above");
        for bin in &mut record.bins {
            if *bin == from {
                *bin = to;
            }
        }
        Ok(())
    }

    /// Read-only view of one bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin` does not belong to this placement.
    #[must_use]
    pub fn bin(&self, bin: BinId) -> BinSnapshot<'_> {
        BinSnapshot { id: bin, data: &self.bins[bin.0] }
    }

    /// Iterates over all bins ever opened (including empty ones).
    pub fn bins(&self) -> impl Iterator<Item = BinSnapshot<'_>> {
        self.bins.iter().enumerate().map(|(i, data)| BinSnapshot { id: BinId(i), data })
    }

    /// Number of bins ever opened (including still-empty cube slots).
    #[must_use]
    pub fn created_bins(&self) -> usize {
        self.bins.len()
    }

    /// Number of bins hosting at least one replica — the "servers used"
    /// metric of the paper's evaluation.
    #[must_use]
    pub fn open_bins(&self) -> usize {
        self.nonempty_bins
    }

    /// Total tenant load placed so far.
    #[must_use]
    pub fn total_load(&self) -> f64 {
        self.total_load
    }

    /// Number of tenants placed.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The bins hosting `tenant`'s replicas, or `None` if unknown.
    #[must_use]
    pub fn tenant_bins(&self, tenant: TenantId) -> Option<&[BinId]> {
        self.tenants.get(&tenant).map(|r| r.bins.as_slice())
    }

    /// The full load of `tenant`, or `None` if unknown.
    #[must_use]
    pub fn tenant_load(&self, tenant: TenantId) -> Option<f64> {
        self.tenants.get(&tenant).map(|r| r.load)
    }

    /// Iterates over placed tenants in arrival order as
    /// `(id, load, hosting_bins)`.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, f64, &[BinId])> {
        self.arrival_order.iter().map(move |id| {
            let rec = &self.tenants[id];
            (*id, rec.load, rec.bins.as_slice())
        })
    }

    /// Current load of `bin`.
    #[must_use]
    pub fn level(&self, bin: BinId) -> f64 {
        self.bins[bin.0].level
    }

    /// Remaining capacity of `bin`.
    #[must_use]
    pub fn free(&self, bin: BinId) -> f64 {
        1.0 - self.bins[bin.0].level
    }

    /// Shared load `|a ∩ b|`: the load on `a` of replicas whose tenant also
    /// has a replica on `b`.
    #[must_use]
    pub fn shared_load(&self, a: BinId, b: BinId) -> f64 {
        self.backend.shared_load(a, b)
    }

    /// Worst-case failover load onto `bin`: the sum of its `γ − 1` largest
    /// shared loads (the reserve the robustness condition requires).
    #[must_use]
    pub fn worst_failover(&self, bin: BinId) -> f64 {
        self.backend.worst_failover(bin)
    }

    /// [`Self::worst_failover`] as if the shared loads of `bin` with the
    /// given peers had already been increased by the given deltas.
    #[must_use]
    pub fn worst_failover_with(&self, bin: BinId, adjustments: &[(BinId, f64)]) -> f64 {
        self.backend.top_shared_sum_with(bin, adjustments, self.gamma - 1)
    }

    /// Sum of the `k` largest shared loads of `bin` after the tentative
    /// `adjustments`, for `k ≤ γ − 1`.
    ///
    /// `k = 1` is the single-failure reserve used by baselines like RFI
    /// that only protect against one server failure.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `k > γ − 1` (the cached top entries cannot
    /// answer deeper queries).
    #[must_use]
    pub fn top_shared_sum_with(&self, bin: BinId, adjustments: &[(BinId, f64)], k: usize) -> f64 {
        self.backend.top_shared_sum_with(bin, adjustments, k)
    }

    /// Conservative extra load redirected to `bin` when exactly the bins in
    /// `failed` fail (each failed shared replica's full load lands here).
    #[must_use]
    pub fn failover_from(&self, bin: BinId, failed: &[BinId]) -> f64 {
        self.backend.failover_from(bin, failed)
    }

    /// Iterates over `(peer, shared_load)` pairs for `bin`.
    pub fn shared_peers(&self, bin: BinId) -> impl Iterator<Item = (BinId, f64)> + '_ {
        self.backend.peers(bin).into_iter()
    }

    /// Whether the placement satisfies the robustness condition of paper §II
    /// for every bin (no overload under any `γ − 1` simultaneous failures).
    ///
    /// Shorthand for [`crate::validity::check`]`.is_robust()`.
    #[must_use]
    pub fn is_robust(&self) -> bool {
        crate::validity::check(self).is_robust()
    }

    /// Aggregate statistics of the placement.
    #[must_use]
    pub fn stats(&self) -> PlacementStats {
        let mut max_level: f64 = 0.0;
        let mut min_level = f64::INFINITY;
        let mut replicas = 0;
        for bin in self.bins.iter().filter(|b| !b.contents.is_empty()) {
            max_level = max_level.max(bin.level);
            min_level = min_level.min(bin.level);
            replicas += bin.contents.len();
        }
        if self.nonempty_bins == 0 {
            min_level = 0.0;
        }
        PlacementStats {
            tenants: self.tenants.len(),
            replicas,
            open_bins: self.nonempty_bins,
            created_bins: self.bins.len(),
            total_load: self.total_load,
            mean_utilization: if self.nonempty_bins == 0 {
                0.0
            } else {
                self.total_load / self.nonempty_bins as f64
            },
            max_level,
            min_level,
        }
    }

    /// Fragmentation statistics: how far the placement's open-bin count has
    /// drifted above the `⌈total_load⌉` lower bound, plus the fill
    /// distribution defragmentation drains from.
    #[must_use]
    pub fn fragmentation(&self) -> FragmentationStats {
        let mut levels: Vec<f64> =
            self.bins.iter().filter(|b| !b.contents.is_empty()).map(|b| b.level).collect();
        levels.sort_by(f64::total_cmp);
        let open_bins = levels.len();
        let mean_fill = if open_bins == 0 { 0.0 } else { self.total_load / open_bins as f64 };
        // p10 via the nearest-rank method on the ascending fill list; with
        // no open bins both percentile and ratio degenerate to 0/1.
        let p10_fill = if open_bins == 0 {
            0.0
        } else {
            let rank = ((open_bins as f64) * 0.10).ceil().max(1.0) as usize;
            levels[rank - 1]
        };
        let floor = self.total_load.ceil().max(1.0);
        let fragmentation_ratio = if open_bins == 0 { 1.0 } else { open_bins as f64 / floor };
        FragmentationStats {
            open_bins,
            total_load: self.total_load,
            mean_fill,
            p10_fill,
            fragmentation_ratio,
        }
    }
}

/// Aggregate statistics of a [`Placement`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementStats {
    /// Tenants placed.
    pub tenants: usize,
    /// Total replicas hosted across all bins.
    pub replicas: usize,
    /// Bins hosting at least one replica ("servers used").
    pub open_bins: usize,
    /// Bins ever opened, including empty cube slots.
    pub created_bins: usize,
    /// Sum of tenant loads.
    pub total_load: f64,
    /// `total_load / open_bins`; the paper's "average server utilization".
    pub mean_utilization: f64,
    /// Highest bin level.
    pub max_level: f64,
    /// Lowest non-empty bin level.
    pub min_level: f64,
}

/// Fragmentation statistics of a [`Placement`].
///
/// `⌈total_load⌉` is a lower bound on servers for any placement (even
/// without replication or failover reserves), so
/// `fragmentation_ratio = open_bins / ⌈total_load⌉` measures drift above
/// the ideal: 1.0 is unimprovable, and values ≫ 1 mark placements that
/// departures have hollowed out.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FragmentationStats {
    /// Bins hosting at least one replica.
    pub open_bins: usize,
    /// Sum of tenant loads.
    pub total_load: f64,
    /// `total_load / open_bins` (0 when no bins are open).
    pub mean_fill: f64,
    /// 10th-percentile bin fill (nearest rank, ascending) — the thin tail
    /// defragmentation drains first.
    pub p10_fill: f64,
    /// `open_bins / max(⌈total_load⌉, 1)`; 1.0 when no bins are open.
    pub fragmentation_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    fn three_bin_placement() -> (Placement, Vec<BinId>) {
        let mut p = Placement::new(2);
        let bins: Vec<BinId> = (0..3).map(|_| p.open_bin(None)).collect();
        (p, bins)
    }

    #[test]
    fn placing_updates_levels_and_shared() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.4), &[b[1], b[2]]).unwrap();
        assert!((p.level(b[0]) - 0.3).abs() < 1e-12);
        assert!((p.level(b[1]) - 0.5).abs() < 1e-12);
        assert!((p.shared_load(b[0], b[1]) - 0.3).abs() < 1e-12);
        assert!((p.shared_load(b[1], b[2]) - 0.2).abs() < 1e-12);
        assert_eq!(p.shared_load(b[0], b[2]), 0.0);
        assert!((p.total_load() - 1.0).abs() < 1e-12);
        assert_eq!(p.tenant_count(), 2);
    }

    #[test]
    fn duplicate_tenant_rejected() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.5), &[b[0], b[1]]).unwrap();
        let err = p.place_tenant(&tenant(0, 0.5), &[b[1], b[2]]).unwrap_err();
        assert!(matches!(err, Error::DuplicateTenant { .. }));
    }

    #[test]
    fn wrong_bin_count_rejected() {
        let (mut p, b) = three_bin_placement();
        assert!(p.place_tenant(&tenant(0, 0.5), &[b[0]]).is_err());
        assert!(p.place_tenant(&tenant(1, 0.5), &[b[0], b[1], b[2]]).is_err());
    }

    #[test]
    fn repeated_bin_rejected() {
        let (mut p, b) = three_bin_placement();
        assert!(p.place_tenant(&tenant(0, 0.5), &[b[0], b[0]]).is_err());
    }

    #[test]
    fn unknown_bin_rejected() {
        let (mut p, b) = three_bin_placement();
        assert!(p.place_tenant(&tenant(0, 0.5), &[b[0], BinId::new(99)]).is_err());
    }

    #[test]
    fn open_bins_counts_only_nonempty() {
        let (mut p, b) = three_bin_placement();
        assert_eq!(p.open_bins(), 0);
        assert_eq!(p.created_bins(), 3);
        p.place_tenant(&tenant(0, 0.5), &[b[0], b[1]]).unwrap();
        assert_eq!(p.open_bins(), 2);
    }

    #[test]
    fn remove_tenant_reverses_placement() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.4), &[b[1], b[2]]).unwrap();
        let (load, bins) = p.remove_tenant(TenantId::new(0)).unwrap();
        assert!((load - 0.6).abs() < 1e-12);
        assert_eq!(bins, vec![b[0], b[1]]);
        assert_eq!(p.level(b[0]), 0.0);
        assert!((p.level(b[1]) - 0.2).abs() < 1e-12);
        assert_eq!(p.shared_load(b[0], b[1]), 0.0);
        assert!((p.shared_load(b[1], b[2]) - 0.2).abs() < 1e-12);
        assert_eq!(p.open_bins(), 2, "emptied bin stops counting as open");
        assert_eq!(p.tenant_count(), 1);
        assert!((p.total_load() - 0.4).abs() < 1e-12);
        assert_eq!(p.tenant_bins(TenantId::new(0)), None);
        let order: Vec<u64> = p.tenants().map(|(id, _, _)| id.get()).collect();
        assert_eq!(order, vec![1], "departed tenants leave the arrival order");
    }

    #[test]
    fn remove_unknown_tenant_errors() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.5), &[b[0], b[1]]).unwrap();
        assert!(matches!(p.remove_tenant(TenantId::new(9)), Err(Error::UnknownTenant { .. })));
        p.remove_tenant(TenantId::new(0)).unwrap();
        assert!(matches!(p.remove_tenant(TenantId::new(0)), Err(Error::UnknownTenant { .. }),));
    }

    #[test]
    fn removed_id_can_be_placed_again() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.5), &[b[0], b[1]]).unwrap();
        p.remove_tenant(TenantId::new(0)).unwrap();
        p.place_tenant(&tenant(0, 0.3), &[b[1], b[2]]).unwrap();
        assert!((p.total_load() - 0.3).abs() < 1e-12);
        assert_eq!(p.tenant_bins(TenantId::new(0)), Some(&[b[1], b[2]][..]));
    }

    #[test]
    fn move_replica_shifts_level_and_shared() {
        let mut p = Placement::new(3);
        let b: Vec<BinId> = (0..5).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1], b[2]]).unwrap();
        p.place_tenant(&tenant(1, 0.3), &[b[0], b[1], b[4]]).unwrap();
        p.move_replica(TenantId::new(0), b[0], b[3]).unwrap();
        assert!((p.level(b[0]) - 0.1).abs() < 1e-12, "only tenant 1's replica remains");
        assert!((p.level(b[3]) - 0.2).abs() < 1e-12);
        assert_eq!(p.shared_load(b[0], b[2]), 0.0);
        assert!((p.shared_load(b[3], b[1]) - 0.2).abs() < 1e-12);
        assert!((p.shared_load(b[3], b[2]) - 0.2).abs() < 1e-12);
        assert!((p.shared_load(b[0], b[1]) - 0.1).abs() < 1e-12);
        assert_eq!(p.tenant_bins(TenantId::new(0)), Some(&[b[3], b[1], b[2]][..]));
        assert!((p.total_load() - 0.9).abs() < 1e-12, "moves do not change total load");
    }

    #[test]
    fn move_replica_rejects_bad_endpoints() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.5), &[b[0], b[1]]).unwrap();
        assert!(matches!(
            p.move_replica(TenantId::new(9), b[0], b[2]),
            Err(Error::UnknownTenant { .. })
        ));
        assert!(p.move_replica(TenantId::new(0), b[2], b[0]).is_err());
        assert!(p.move_replica(TenantId::new(0), b[0], b[1]).is_err());
        assert!(p.move_replica(TenantId::new(0), b[0], BinId::new(99)).is_err());
    }

    #[test]
    fn update_load_shifts_levels_shared_and_total() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.4), &[b[1], b[2]]).unwrap();
        let (old, bins) = p.update_load(TenantId::new(0), 0.8).unwrap();
        assert!((old - 0.6).abs() < 1e-12);
        assert_eq!(bins, vec![b[0], b[1]]);
        assert!((p.level(b[0]) - 0.4).abs() < 1e-12);
        assert!((p.level(b[1]) - 0.6).abs() < 1e-12);
        assert!((p.shared_load(b[0], b[1]) - 0.4).abs() < 1e-12);
        assert!((p.shared_load(b[1], b[2]) - 0.2).abs() < 1e-12, "other tenants untouched");
        assert!((p.total_load() - 1.2).abs() < 1e-12);
        assert_eq!(p.tenant_load(TenantId::new(0)), Some(0.8));
        // Downward drift reverses symmetrically.
        p.update_load(TenantId::new(0), 0.2).unwrap();
        assert!((p.level(b[0]) - 0.1).abs() < 1e-12);
        assert!((p.shared_load(b[0], b[1]) - 0.1).abs() < 1e-12);
        assert!((p.total_load() - 0.6).abs() < 1e-12);
        // The incremental bookkeeping still matches a from-scratch rebuild.
        assert!(crate::oracle::audit(&p).is_ok());
    }

    #[test]
    fn update_load_rejects_invalid_values() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.5), &[b[0], b[1]]).unwrap();
        for bad in [0.0, -0.3, 1.0 + 1e-6, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(p.update_load(TenantId::new(0), bad), Err(Error::InvalidLoad { .. })),
                "load {bad} must be rejected"
            );
        }
        assert!(matches!(p.update_load(TenantId::new(9), 0.5), Err(Error::UnknownTenant { .. })));
        // Failed updates leave the placement untouched.
        assert_eq!(p.tenant_load(TenantId::new(0)), Some(0.5));
        assert!((p.level(b[0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn update_load_to_same_value_is_a_no_op() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.5), &[b[0], b[1]]).unwrap();
        let (old, _) = p.update_load(TenantId::new(0), 0.5).unwrap();
        assert!((old - 0.5).abs() < 1e-12);
        assert!((p.level(b[0]) - 0.25).abs() < 1e-12);
        assert!((p.shared_load(b[0], b[1]) - 0.25).abs() < 1e-12);
        assert!(crate::oracle::audit(&p).is_ok());
    }

    #[test]
    fn worst_failover_tracks_largest_peers() {
        let mut p = Placement::new(3);
        let b: Vec<BinId> = (0..5).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1], b[2]]).unwrap();
        p.place_tenant(&tenant(1, 0.3), &[b[0], b[3], b[4]]).unwrap();
        // bin 0 shares 0.2 with bins 1 and 2, and 0.1 with bins 3 and 4;
        // γ−1 = 2 worst failures give 0.4.
        assert!((p.worst_failover(b[0]) - 0.4).abs() < 1e-12);
        assert!((p.failover_from(b[0], &[b[1], b[3]]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tenants_iterate_in_arrival_order() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(5, 0.5), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(2, 0.4), &[b[1], b[2]]).unwrap();
        let order: Vec<u64> = p.tenants().map(|(id, _, _)| id.get()).collect();
        assert_eq!(order, vec![5, 2]);
        assert_eq!(p.tenant_bins(TenantId::new(5)), Some(&[b[0], b[1]][..]));
        assert_eq!(p.tenant_load(TenantId::new(2)), Some(0.4));
        assert_eq!(p.tenant_bins(TenantId::new(99)), None);
    }

    #[test]
    fn stats_aggregate() {
        let (mut p, b) = three_bin_placement();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.4), &[b[1], b[2]]).unwrap();
        let s = p.stats();
        assert_eq!(s.tenants, 2);
        assert_eq!(s.replicas, 4);
        assert_eq!(s.open_bins, 3);
        assert!((s.total_load - 1.0).abs() < 1e-12);
        assert!((s.mean_utilization - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.max_level - 0.5).abs() < 1e-12);
        assert!((s.min_level - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fragmentation_tracks_open_bin_drift() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..12).map(|_| p.open_bin(None)).collect();
        // Ten thin bins (0.05 each side) and one half-full pair: total load
        // 1.0, so the ceil lower bound is 1 server but 12 are open.
        for i in 0..5 {
            p.place_tenant(&tenant(i, 0.1), &[b[2 * i as usize], b[2 * i as usize + 1]]).unwrap();
        }
        p.place_tenant(&tenant(9, 0.5), &[b[10], b[11]]).unwrap();
        let f = p.fragmentation();
        assert_eq!(f.open_bins, 12);
        assert!((f.total_load - 1.0).abs() < 1e-12);
        assert!((f.mean_fill - 1.0 / 12.0).abs() < 1e-12);
        assert!((f.p10_fill - 0.05).abs() < 1e-12);
        assert!((f.fragmentation_ratio - 12.0).abs() < 1e-12);
    }

    #[test]
    fn fragmentation_of_empty_placement_degenerates() {
        let p = Placement::new(2);
        let f = p.fragmentation();
        assert_eq!(f.open_bins, 0);
        assert_eq!(f.mean_fill, 0.0);
        assert_eq!(f.p10_fill, 0.0);
        assert!((f.fragmentation_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_placement_stats() {
        let p = Placement::new(2);
        let s = p.stats();
        assert_eq!(s.open_bins, 0);
        assert_eq!(s.mean_utilization, 0.0);
        assert_eq!(s.min_level, 0.0);
    }
}
