//! Normalized load values.

use crate::error::{Error, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A normalized tenant load in the half-open interval `(0, 1]`.
///
/// Servers have unit capacity, so a load of `1.0` saturates a server by
/// itself. Loads are validated at construction, which lets the rest of the
/// crate assume well-formed values.
///
/// ```
/// use cubefit_core::Load;
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let load = Load::new(0.25)?;
/// assert_eq!(load.get(), 0.25);
/// assert!(Load::new(0.0).is_err());
/// assert!(Load::new(1.5).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Load(f64);

// Serialized as a bare float. Deserialization routes through [`Load::new`]
// so an out-of-range value on the wire is a typed decode error, never a
// `Load` that skipped validation.
#[cfg(feature = "serde")]
impl serde::Serialize for Load {
    fn to_value(&self) -> serde::Value {
        serde::Value::from(self.0)
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Load {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let raw = <f64 as serde::Deserialize>::from_value(value)?;
        Load::new(raw).map_err(|err| serde::DeError::custom(err.to_string()))
    }
}

impl Load {
    /// Creates a load, validating that it lies in `(0, 1]` and is finite.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLoad`] if `value` is not a finite number in
    /// `(0, 1]`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 && value <= 1.0 {
            Ok(Load(value))
        } else {
            Err(Error::InvalidLoad { value })
        }
    }

    /// Returns the underlying `f64` value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The load carried by each of `gamma` replicas of a tenant with this
    /// load (the tenant's clients are split evenly across replicas).
    #[must_use]
    pub fn replica_size(self, gamma: usize) -> f64 {
        self.0 / gamma as f64
    }
}

impl fmt::Display for Load {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Load {
    type Error = Error;

    fn try_from(value: f64) -> Result<Self> {
        Load::new(value)
    }
}

impl From<Load> for f64 {
    fn from(load: Load) -> f64 {
        load.0
    }
}

impl Add for Load {
    type Output = f64;

    fn add(self, rhs: Load) -> f64 {
        self.0 + rhs.0
    }
}

impl Sub for Load {
    type Output = f64;

    fn sub(self, rhs: Load) -> f64 {
        self.0 - rhs.0
    }
}

impl Mul<f64> for Load {
    type Output = f64;

    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Div<f64> for Load {
    type Output = f64;

    fn div(self, rhs: f64) -> f64 {
        self.0 / rhs
    }
}

impl AddAssign<Load> for f64 {
    fn add_assign(&mut self, rhs: Load) {
        *self += rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_boundary_values() {
        assert!(Load::new(1.0).is_ok());
        assert!(Load::new(f64::MIN_POSITIVE).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Load::new(0.0).is_err());
        assert!(Load::new(-0.1).is_err());
        assert!(Load::new(1.0 + 1e-12).is_err());
        assert!(Load::new(f64::NAN).is_err());
        assert!(Load::new(f64::INFINITY).is_err());
    }

    #[test]
    fn replica_size_divides_evenly() {
        let load = Load::new(0.9).unwrap();
        assert!((load.replica_size(3) - 0.3).abs() < 1e-12);
        assert!((load.replica_size(2) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn conversions_roundtrip() {
        let load = Load::try_from(0.5).unwrap();
        let value: f64 = load.into();
        assert_eq!(value, 0.5);
    }

    #[test]
    fn arithmetic_produces_plain_floats() {
        let a = Load::new(0.5).unwrap();
        let b = Load::new(0.25).unwrap();
        assert_eq!(a + b, 0.75);
        assert_eq!(a - b, 0.25);
        assert_eq!(a * 2.0, 1.0);
        assert_eq!(a / 2.0, 0.25);
        let mut acc = 0.0_f64;
        acc += a;
        assert_eq!(acc, 0.5);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Load::new(0.5).unwrap().to_string(), "0.5");
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_validates_on_deserialize() {
        let load: Load = serde_json::from_str("0.5").unwrap();
        assert_eq!(load.get(), 0.5);
        assert_eq!(serde_json::to_string(&load).unwrap(), "0.5");
        // Out-of-range wire values are rejected with the typed message, not
        // smuggled past validation.
        for bad in ["0.0", "-0.25", "2.0"] {
            let err = serde_json::from_str::<Load>(bad).unwrap_err();
            assert!(err.to_string().contains("outside the valid range"), "{bad}: {err}");
        }
    }
}
