//! Robustness checking and failure simulation (paper §II, Theorem 1).
//!
//! A placement is *robust* when, for every bin `Sᵢ` and every set `S*` of at
//! most `γ − 1` other bins, `|Sᵢ| + Σ_{Sⱼ∈S*} |Sᵢ ∩ Sⱼ| ≤ 1`. Because shared
//! loads are non-negative, the worst `S*` for a bin is simply its `γ − 1`
//! largest shared-load peers, so the condition can be checked per bin in
//! `O(1)` given the shared-load index.
//!
//! This module also simulates *concrete* failure events, with two
//! redistribution semantics:
//!
//! * [`FailoverSemantics::Conservative`] — a failed replica's full load
//!   lands on every surviving sibling (the bound used by the robustness
//!   condition);
//! * [`FailoverSemantics::EvenSplit`] — a failed replica's load is divided
//!   evenly among surviving siblings (what a real load balancer does; used
//!   by the cluster experiments of §V.B).

use crate::bin::BinId;
use crate::placement::Placement;
use crate::tenant::TenantId;
use crate::EPSILON;
use std::collections::{HashMap, HashSet};

/// How a failed replica's load is redirected to surviving replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FailoverSemantics {
    /// Full replica load lands on each survivor (worst-case bound of §II).
    #[default]
    Conservative,
    /// Load splits evenly among survivors (realistic client redistribution).
    EvenSplit,
}

/// One robustness violation: a bin that can be overloaded by some set of at
/// most `γ − 1` failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The bin that would overload.
    pub bin: BinId,
    /// Its current level.
    pub level: f64,
    /// Worst-case failover load onto it.
    pub failover: f64,
}

impl Violation {
    /// Total load the bin would carry in the worst case.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.level + self.failover
    }
}

/// Result of checking the robustness condition over a whole placement.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Bins violating the condition (empty for robust placements).
    pub violations: Vec<Violation>,
    /// Number of non-empty bins checked.
    pub checked_bins: usize,
    /// Smallest margin `1 − level − worst_failover` over all bins; negative
    /// iff the placement is not robust.
    pub worst_margin: f64,
}

impl RobustnessReport {
    /// Whether the placement satisfies the robustness condition everywhere.
    #[must_use]
    pub fn is_robust(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the robustness condition for every non-empty bin of `placement`.
#[must_use]
pub fn check(placement: &Placement) -> RobustnessReport {
    let mut violations = Vec::new();
    let mut checked = 0;
    let mut worst_margin = f64::INFINITY;
    for bin in placement.bins() {
        if bin.is_empty() {
            continue;
        }
        checked += 1;
        let level = bin.level();
        let failover = placement.worst_failover(bin.id());
        let margin = 1.0 - level - failover;
        worst_margin = worst_margin.min(margin);
        if margin < -EPSILON {
            violations.push(Violation { bin: bin.id(), level, failover });
        }
    }
    if checked == 0 {
        worst_margin = 1.0;
    }
    RobustnessReport { violations, checked_bins: checked, worst_margin }
}

/// Outcome of a concrete failure event.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureImpact {
    /// Post-failure load of every surviving bin (non-empty bins only),
    /// including redirected load.
    pub loads: Vec<(BinId, f64)>,
    /// The surviving bin carrying the highest load, if any survive.
    pub hottest: Option<(BinId, f64)>,
    /// Surviving bins whose post-failure load exceeds unit capacity — each
    /// is an SLA violation.
    pub overloaded: Vec<BinId>,
    /// Tenants whose replicas were all lost.
    pub unavailable_tenants: Vec<TenantId>,
}

impl FailureImpact {
    /// Whether any surviving server exceeds capacity.
    #[must_use]
    pub fn has_overload(&self) -> bool {
        !self.overloaded.is_empty()
    }

    /// The maximum post-failure load (0 if nothing survives).
    #[must_use]
    pub fn max_load(&self) -> f64 {
        self.hottest.map_or(0.0, |(_, l)| l)
    }
}

/// Simulates the simultaneous failure of `failed` bins.
///
/// Duplicated and empty entries in `failed` are tolerated; failed bins do
/// not appear in the result.
#[must_use]
pub fn simulate_failures(
    placement: &Placement,
    failed: &[BinId],
    semantics: FailoverSemantics,
) -> FailureImpact {
    let failed_set: HashSet<BinId> = failed.iter().copied().collect();
    let gamma = placement.gamma();

    // Extra load per surviving bin.
    let mut extra: HashMap<BinId, f64> = HashMap::new();
    let mut unavailable = Vec::new();
    let mut seen: HashSet<TenantId> = HashSet::new();

    for &fb in &failed_set {
        for &(tenant, replica_load) in placement.bin(fb).contents() {
            if !seen.insert(tenant) {
                continue;
            }
            let bins =
                placement.tenant_bins(tenant).expect("bin contents reference placed tenants");
            let failed_replicas = bins.iter().filter(|b| failed_set.contains(b)).count();
            let survivors: Vec<BinId> =
                bins.iter().copied().filter(|b| !failed_set.contains(b)).collect();
            if survivors.is_empty() {
                unavailable.push(tenant);
                continue;
            }
            debug_assert_eq!(bins.len(), gamma);
            let redirected = replica_load * failed_replicas as f64;
            let per_survivor = match semantics {
                FailoverSemantics::Conservative => redirected,
                FailoverSemantics::EvenSplit => redirected / survivors.len() as f64,
            };
            for s in survivors {
                *extra.entry(s).or_insert(0.0) += per_survivor;
            }
        }
    }

    let mut loads = Vec::new();
    let mut hottest: Option<(BinId, f64)> = None;
    let mut overloaded = Vec::new();
    for bin in placement.bins() {
        if bin.is_empty() || failed_set.contains(&bin.id()) {
            continue;
        }
        let load = bin.level() + extra.get(&bin.id()).copied().unwrap_or(0.0);
        if hottest.is_none_or(|(_, l)| load > l) {
            hottest = Some((bin.id(), load));
        }
        if load > 1.0 + EPSILON {
            overloaded.push(bin.id());
        }
        loads.push((bin.id(), load));
    }
    unavailable.sort_unstable();
    FailureImpact { loads, hottest, overloaded, unavailable_tenants: unavailable }
}

/// Finds the set of `count` servers whose simultaneous failure pushes the
/// highest load onto a single surviving server — the paper's "worst overload
/// case" used in the Fig. 5 experiments.
///
/// Uses exhaustive search while the number of candidate combinations stays
/// below an internal budget, and a greedy one-at-a-time selection beyond
/// that.
#[must_use]
pub fn worst_failure_set(
    placement: &Placement,
    count: usize,
    semantics: FailoverSemantics,
) -> Vec<BinId> {
    let candidates: Vec<BinId> =
        placement.bins().filter(|b| !b.is_empty()).map(|b| b.id()).collect();
    if count == 0 || candidates.len() <= 1 {
        // With at most one non-empty bin there is no failure set that
        // leaves a survivor to overload: failing the only bin would leave
        // nothing to measure, so the worst set is empty.
        return Vec::new();
    }
    let count = count.min(candidates.len() - 1);

    const BUDGET: u128 = 100_000;
    if combinations(candidates.len(), count) <= BUDGET {
        let mut best: Option<(f64, Vec<BinId>)> = None;
        let mut chosen = Vec::with_capacity(count);
        exhaustive(placement, semantics, &candidates, count, 0, &mut chosen, &mut best);
        best.map(|(_, set)| set).unwrap_or_default()
    } else {
        greedy(placement, semantics, &candidates, count)
    }
}

fn combinations(n: usize, k: usize) -> u128 {
    let mut result: u128 = 1;
    for i in 0..k.min(n) {
        result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if result > u128::MAX / 2 {
            return u128::MAX;
        }
    }
    result
}

fn exhaustive(
    placement: &Placement,
    semantics: FailoverSemantics,
    candidates: &[BinId],
    count: usize,
    from: usize,
    chosen: &mut Vec<BinId>,
    best: &mut Option<(f64, Vec<BinId>)>,
) {
    if chosen.len() == count {
        let impact = simulate_failures(placement, chosen, semantics);
        let score = impact.max_load();
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            *best = Some((score, chosen.clone()));
        }
        return;
    }
    let remaining = count - chosen.len();
    for i in from..=candidates.len().saturating_sub(remaining) {
        chosen.push(candidates[i]);
        exhaustive(placement, semantics, candidates, count, i + 1, chosen, best);
        chosen.pop();
    }
}

fn greedy(
    placement: &Placement,
    semantics: FailoverSemantics,
    candidates: &[BinId],
    count: usize,
) -> Vec<BinId> {
    let mut chosen: Vec<BinId> = Vec::with_capacity(count);
    for _ in 0..count {
        let mut best: Option<(f64, BinId)> = None;
        for &cand in candidates {
            if chosen.contains(&cand) {
                continue;
            }
            chosen.push(cand);
            let score = simulate_failures(placement, &chosen, semantics).max_load();
            chosen.pop();
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, cand));
            }
        }
        match best {
            Some((_, bin)) => chosen.push(bin),
            None => break,
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;
    use crate::tenant::Tenant;

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    /// Builds the γ=2 packing of paper Fig. 1(a):
    /// σ = ⟨a=0.6, b=0.3, c=0.6, d=0.78, e=0.12, f=0.36⟩, with the
    /// caption's failover structure (a→S2, b and e→S3, f→S5 when S1 fails).
    fn figure_1a() -> (Placement, Vec<BinId>) {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..5).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1]]).unwrap(); // a: S1, S2
        p.place_tenant(&tenant(1, 0.3), &[b[0], b[2]]).unwrap(); // b: S1, S3
        p.place_tenant(&tenant(2, 0.6), &[b[1], b[2]]).unwrap(); // c: S2, S3
        p.place_tenant(&tenant(3, 0.78), &[b[3], b[4]]).unwrap(); // d: S4, S5
        p.place_tenant(&tenant(4, 0.12), &[b[0], b[2]]).unwrap(); // e: S1, S3
        p.place_tenant(&tenant(5, 0.36), &[b[0], b[4]]).unwrap(); // f: S1, S5
        (p, b)
    }

    #[test]
    fn figure_1a_is_robust() {
        let (p, _) = figure_1a();
        let report = check(&p);
        assert!(report.is_robust(), "violations: {:?}", report.violations);
        assert_eq!(report.checked_bins, 5);
        assert!(report.worst_margin >= -EPSILON);
    }

    #[test]
    fn figure_1a_single_failure_loads_match_caption() {
        let (p, b) = figure_1a();
        // "if S1 fails, the load of replica a redirects to S2; this gives a
        // total load of 0.6 + 0.3 ≤ 1 for S2" — S2's own level is
        // a/2 + c/2 = 0.6, plus a's failed replica 0.3.
        let impact = simulate_failures(&p, &[b[0]], FailoverSemantics::EvenSplit);
        let s2 = impact.loads.iter().find(|(id, _)| *id == b[1]).unwrap().1;
        assert!((s2 - 0.9).abs() < 1e-12);
        // "loads of b and e redirect to S3": S3 = 0.15+0.3+0.06 = 0.51 own,
        // plus 0.15 + 0.06 redirected.
        let s3 = impact.loads.iter().find(|(id, _)| *id == b[2]).unwrap().1;
        assert!((s3 - 0.72).abs() < 1e-12);
        assert!(!impact.has_overload());
        assert!(impact.unavailable_tenants.is_empty());
    }

    #[test]
    fn overload_detected_when_reserve_missing() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..3).map(|_| p.open_bin(None)).collect();
        // Two large tenants share a pair of bins: each bin at level 0.9,
        // sharing 0.9 with its peer — failure overloads the survivor.
        p.place_tenant(&tenant(0, 0.9), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.9), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(2, 0.2), &[b[1], b[2]]).unwrap();
        let report = check(&p);
        assert!(!report.is_robust());
        assert!(report.worst_margin < 0.0);
        let impact = simulate_failures(&p, &[b[0]], FailoverSemantics::EvenSplit);
        assert!(impact.has_overload());
        assert!(impact.overloaded.contains(&b[1]));
    }

    #[test]
    fn conservative_vs_even_split_gamma3() {
        let mut p = Placement::new(3);
        let b: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1], b[2]]).unwrap();
        // One failure: replica load 0.2 splits across 2 survivors (0.1
        // each) under EvenSplit, lands whole under Conservative.
        let even = simulate_failures(&p, &[b[0]], FailoverSemantics::EvenSplit);
        let cons = simulate_failures(&p, &[b[0]], FailoverSemantics::Conservative);
        let even_b1 = even.loads.iter().find(|(id, _)| *id == b[1]).unwrap().1;
        let cons_b1 = cons.loads.iter().find(|(id, _)| *id == b[1]).unwrap().1;
        assert!((even_b1 - 0.3).abs() < 1e-12);
        assert!((cons_b1 - 0.4).abs() < 1e-12);
        // Bin 3 never hosted anything: excluded from loads.
        assert!(!even.loads.iter().any(|(id, _)| *id == b[3]));
    }

    #[test]
    fn two_failures_concentrate_on_last_survivor() {
        let mut p = Placement::new(3);
        let b: Vec<BinId> = (0..3).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1], b[2]]).unwrap();
        let impact = simulate_failures(&p, &[b[0], b[1]], FailoverSemantics::EvenSplit);
        // Both failed replicas (0.2 each) land on the sole survivor.
        let s3 = impact.loads.iter().find(|(id, _)| *id == b[2]).unwrap().1;
        assert!((s3 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn all_replicas_failed_marks_tenant_unavailable() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..3).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(7, 0.4), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(8, 0.4), &[b[1], b[2]]).unwrap();
        let impact = simulate_failures(&p, &[b[0], b[1]], FailoverSemantics::EvenSplit);
        assert_eq!(impact.unavailable_tenants, vec![TenantId::new(7)]);
    }

    #[test]
    fn worst_failure_set_finds_the_hot_pair() {
        let (p, b) = figure_1a();
        let worst = worst_failure_set(&p, 1, FailoverSemantics::EvenSplit);
        assert_eq!(worst.len(), 1);
        // Verify the returned server is actually the argmax.
        let best_score = simulate_failures(&p, &worst, FailoverSemantics::EvenSplit).max_load();
        for &cand in &b {
            let score = simulate_failures(&p, &[cand], FailoverSemantics::EvenSplit).max_load();
            assert!(score <= best_score + EPSILON);
        }
    }

    #[test]
    fn worst_failure_set_empty_inputs() {
        let p = Placement::new(2);
        assert!(worst_failure_set(&p, 2, FailoverSemantics::Conservative).is_empty());
        let (p, _) = figure_1a();
        assert!(worst_failure_set(&p, 0, FailoverSemantics::Conservative).is_empty());
    }

    #[test]
    fn worst_failure_set_always_leaves_a_survivor() {
        // The clamp's intent is "at least one survivor". A one-candidate
        // state is unreachable via `place_tenant` (every tenant fills
        // γ ≥ 2 bins) but guarded against regardless: it returns the
        // empty set instead of failing the only bin. With two candidates,
        // any requested count must fail exactly one bin.
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        p.place_tenant(&tenant(0, 0.5), &[a, b]).unwrap();
        for count in 1..=5 {
            let set = worst_failure_set(&p, count, FailoverSemantics::Conservative);
            assert_eq!(set.len(), 1, "count {count} must leave a survivor");
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instance() {
        let (p, _) = figure_1a();
        let candidates: Vec<BinId> = p.bins().filter(|b| !b.is_empty()).map(|b| b.id()).collect();
        let greedy_set = greedy(&p, FailoverSemantics::EvenSplit, &candidates, 1);
        let exhaustive_set = worst_failure_set(&p, 1, FailoverSemantics::EvenSplit);
        let g = simulate_failures(&p, &greedy_set, FailoverSemantics::EvenSplit).max_load();
        let e = simulate_failures(&p, &exhaustive_set, FailoverSemantics::EvenSplit).max_load();
        assert!((g - e).abs() < 1e-12);
    }

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(5, 2), 10);
        assert_eq!(combinations(69, 2), 2346);
        assert_eq!(combinations(3, 0), 1);
    }

    #[test]
    fn empty_placement_report() {
        let p = Placement::new(2);
        let report = check(&p);
        assert!(report.is_robust());
        assert_eq!(report.checked_bins, 0);
        assert_eq!(report.worst_margin, 1.0);
    }
}
