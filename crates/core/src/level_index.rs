//! Sorted index of bins by level.

use crate::bin::BinId;
use std::collections::BTreeSet;

/// An ordered index of bins keyed by their current level, supporting
/// descending (Best-Fit) and ascending scans in `O(log n)` per update.
///
/// Levels are non-negative finite floats, so their IEEE-754 bit patterns
/// order identically to the values themselves.
///
/// ```
/// use cubefit_core::level_index::LevelIndex;
/// use cubefit_core::BinId;
///
/// let mut index = LevelIndex::default();
/// index.insert(BinId::new(0), 0.3);
/// index.insert(BinId::new(1), 0.7);
/// assert_eq!(index.iter_desc().next(), Some(BinId::new(1)));
/// index.update(BinId::new(0), 0.3, 0.9);
/// assert_eq!(index.iter_desc().next(), Some(BinId::new(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LevelIndex {
    by_level: BTreeSet<(u64, BinId)>,
}

impl LevelIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        LevelIndex::default()
    }

    /// Adds `bin` with the given level.
    pub fn insert(&mut self, bin: BinId, level: f64) {
        self.by_level.insert((level.to_bits(), bin));
    }

    /// Re-keys `bin` after its level changed from `old` to `new`.
    ///
    /// The `(bin, old)` pair must be present (inserted earlier with exactly
    /// that level); otherwise the index silently gains a duplicate entry,
    /// which a `debug_assert` flags in test builds.
    pub fn update(&mut self, bin: BinId, old: f64, new: f64) {
        let removed = self.by_level.remove(&(old.to_bits(), bin));
        debug_assert!(removed, "update of untracked bin {bin}");
        self.by_level.insert((new.to_bits(), bin));
    }

    /// Removes `bin` (keyed at `level`) from the index.
    pub fn remove(&mut self, bin: BinId, level: f64) -> bool {
        self.by_level.remove(&(level.to_bits(), bin))
    }

    /// Whether `(bin, level)` is tracked.
    #[must_use]
    pub fn contains(&self, bin: BinId, level: f64) -> bool {
        self.by_level.contains(&(level.to_bits(), bin))
    }

    /// Number of tracked bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_level.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_level.is_empty()
    }

    /// Bins in descending level order (fullest first).
    pub fn iter_desc(&self) -> impl Iterator<Item = BinId> + '_ {
        self.by_level.iter().rev().map(|&(_, bin)| bin)
    }

    /// Bins in ascending level order (emptiest first).
    pub fn iter_asc(&self) -> impl Iterator<Item = BinId> + '_ {
        self.by_level.iter().map(|&(_, bin)| bin)
    }

    /// Bins with level at most `max_level`, in descending level order.
    ///
    /// Lets Best-Fit scans skip bins that a capacity check alone already
    /// rules out.
    pub fn iter_desc_at_most(&self, max_level: f64) -> impl Iterator<Item = BinId> + '_ {
        let bound = (max_level.max(0.0).to_bits(), BinId::new(usize::MAX));
        self.by_level.range(..=bound).rev().map(|&(_, bin)| bin)
    }

    /// Bins with key at least `min_key`, in ascending key order.
    ///
    /// When the index is keyed by *remaining slack* rather than level, this
    /// yields tightest feasible fits first.
    pub fn iter_asc_at_least(&self, min_key: f64) -> impl Iterator<Item = BinId> + '_ {
        let bound = (min_key.max(0.0).to_bits(), BinId::new(0));
        self.by_level.range(bound..).map(|&(_, bin)| bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_level_then_updates() {
        let mut idx = LevelIndex::new();
        idx.insert(BinId::new(0), 0.5);
        idx.insert(BinId::new(1), 0.4);
        idx.insert(BinId::new(2), 0.6);
        let desc: Vec<usize> = idx.iter_desc().map(|b| b.index()).collect();
        assert_eq!(desc, vec![2, 0, 1]);
        let asc: Vec<usize> = idx.iter_asc().map(|b| b.index()).collect();
        assert_eq!(asc, vec![1, 0, 2]);
        idx.update(BinId::new(1), 0.4, 0.7);
        assert_eq!(idx.iter_desc().next(), Some(BinId::new(1)));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn remove_and_contains() {
        let mut idx = LevelIndex::new();
        idx.insert(BinId::new(3), 0.25);
        assert!(idx.contains(BinId::new(3), 0.25));
        assert!(!idx.contains(BinId::new(3), 0.5));
        assert!(idx.remove(BinId::new(3), 0.25));
        assert!(!idx.remove(BinId::new(3), 0.25));
        assert!(idx.is_empty());
    }

    #[test]
    fn bounded_descending_scan() {
        let mut idx = LevelIndex::new();
        idx.insert(BinId::new(0), 0.2);
        idx.insert(BinId::new(1), 0.5);
        idx.insert(BinId::new(2), 0.8);
        let under: Vec<usize> = idx.iter_desc_at_most(0.6).map(|b| b.index()).collect();
        assert_eq!(under, vec![1, 0]);
        // Inclusive bound.
        let exact: Vec<usize> = idx.iter_desc_at_most(0.5).map(|b| b.index()).collect();
        assert_eq!(exact, vec![1, 0]);
        assert!(idx.iter_desc_at_most(0.1).next().is_none());
    }

    #[test]
    fn ascending_bounded_scan() {
        let mut idx = LevelIndex::new();
        idx.insert(BinId::new(0), 0.2);
        idx.insert(BinId::new(1), 0.5);
        idx.insert(BinId::new(2), 0.8);
        let over: Vec<usize> = idx.iter_asc_at_least(0.4).map(|b| b.index()).collect();
        assert_eq!(over, vec![1, 2]);
        let all: Vec<usize> = idx.iter_asc_at_least(0.0).map(|b| b.index()).collect();
        assert_eq!(all.len(), 3);
        assert!(idx.iter_asc_at_least(0.9).next().is_none());
    }

    #[test]
    fn equal_levels_are_both_kept() {
        let mut idx = LevelIndex::new();
        idx.insert(BinId::new(0), 0.5);
        idx.insert(BinId::new(1), 0.5);
        assert_eq!(idx.len(), 2);
        let all: Vec<BinId> = idx.iter_desc().collect();
        assert_eq!(all.len(), 2);
    }
}
