//! Pluggable derived-index backends for [`crate::Placement`].
//!
//! Every consolidation algorithm reads the same derived state — per-bin
//! levels, the pairwise shared-load matrix, and cached top-`γ−1` failover
//! reserves — through [`crate::Placement`]'s query surface. This module
//! extracts the *ownership* of that state behind the [`PlacementBackend`]
//! trait so the storage layout can scale independently of the placement
//! logic:
//!
//! * [`SingleBackend`] — one global [`SharedIndex`]; the original layout,
//!   and still the default.
//! * [`ShardedBackend`] — tenants are partitioned across `N` placement
//!   shards by tenant id (`id mod N`). Each shard owns a shard-local
//!   [`SharedIndex`] and level vector covering exactly its own tenants'
//!   replicas, which is the unit of parallel audit
//!   ([`crate::Oracle::rebuild_sharded`]) and the natural unit of future
//!   distribution. A *merged* [`SharedIndex`] receives the same delta
//!   stream in the same operation order as [`SingleBackend`] would, so
//!   every query — and therefore every placement decision and the
//!   Theorem-1 `γ−1` reserve verdict — is bit-identical to the
//!   single-backend answer. Cross-shard failover accounting is reconciled
//!   at shard boundaries by [`PlacementBackend::reconcile`]: the sum of
//!   the per-shard matrices and level vectors must equal the merged state
//!   within [`RECONCILE_TOLERANCE`].
//!
//! Backends also expose a deferred *mutation batch* mode
//! ([`PlacementBackend::begin_batch`] / [`PlacementBackend::end_batch`])
//! that postpones top-`k` cache rebuilds across a removal or load-update
//! batch: decrements rebuild two full matrix rows each, so a batch that
//! touches the same bins repeatedly rebuilds each dirty row once instead
//! of once per operation. No failover queries may be issued between the
//! two calls (debug builds assert this); the final state is equivalent to
//! the sequential schedule because both sides apply the same matrix
//! deltas and the caches are a pure function of the matrix rows.

use crate::bin::BinId;
use crate::shared::SharedIndex;
use crate::tenant::TenantId;

/// Tolerance for cross-shard reconciliation: per-shard sums and the merged
/// state accumulate the same replica deltas in different association
/// orders, so honest divergence is a dropped/duplicated term, far above
/// rounding noise.
pub const RECONCILE_TOLERANCE: f64 = 1e-9;

/// Storage + query layer for a placement's derived indexes (levels,
/// shared-load matrix, cached failover reserves).
///
/// Mutations carry the owning [`TenantId`] so partitioned backends can
/// route the delta to the tenant's shard; query methods always answer from
/// the merged (whole-placement) view so callers never need shard
/// awareness.
pub trait PlacementBackend: std::fmt::Debug + Send + Sync {
    /// Registers a newly opened bin with every shard and the merged view.
    fn push_bin(&mut self);

    /// Number of bins tracked (equals the placement's created bins).
    fn bin_count(&self) -> usize;

    /// Adds `delta` to the shared load between `a` and `b` (both orders)
    /// on behalf of `tenant`.
    fn add_shared(&mut self, tenant: TenantId, a: BinId, b: BinId, delta: f64);

    /// Subtracts `delta` from the shared load between `a` and `b` (both
    /// orders) on behalf of `tenant`.
    fn sub_shared(&mut self, tenant: TenantId, a: BinId, b: BinId, delta: f64);

    /// Records a level delta of `tenant`'s replica on `bin` (negative for
    /// removals). Backends without per-shard level accounting may ignore
    /// this — the placement keeps the authoritative merged levels.
    fn add_level(&mut self, tenant: TenantId, bin: BinId, delta: f64);

    /// Shared load `|a ∩ b|` from the merged view.
    fn shared_load(&self, a: BinId, b: BinId) -> f64;

    /// Sum of the `γ − 1` largest shared loads of `bin` (merged view).
    fn worst_failover(&self, bin: BinId) -> f64;

    /// Sum of the `k` largest shared loads of `bin` after tentative
    /// `adjustments` (merged view, `k ≤ γ − 1`).
    fn top_shared_sum_with(&self, bin: BinId, adjustments: &[(BinId, f64)], k: usize) -> f64;

    /// Total shared load between `bin` and a specific failed set.
    fn failover_from(&self, bin: BinId, failed: &[BinId]) -> f64;

    /// `(peer, shared_load)` entries of `bin` from the merged view.
    fn peers(&self, bin: BinId) -> Vec<(BinId, f64)>;

    /// Enters deferred-maintenance mode: top-`k` caches stop updating and
    /// rows touched by mutations are recorded instead. Failover queries
    /// are invalid until [`Self::end_batch`].
    fn begin_batch(&mut self);

    /// Leaves deferred-maintenance mode, rebuilding every dirty top-`k`
    /// cache from its matrix row exactly once.
    fn end_batch(&mut self);

    /// Number of placement shards (1 for the single backend).
    fn shard_count(&self) -> usize;

    /// The shard owning `tenant`'s derived state.
    fn shard_of(&self, tenant: TenantId) -> usize;

    /// Cross-shard reconciliation: verifies that per-shard state sums to
    /// the merged state (levels against `levels`, the authoritative per-bin
    /// levels) within [`RECONCILE_TOLERANCE`]. Returns human-readable
    /// divergence descriptions; empty means reconciled. The single backend
    /// is trivially reconciled.
    fn reconcile(&self, levels: &[f64]) -> Vec<String>;

    /// Clones the backend behind a fresh box ([`crate::Placement`] is
    /// `Clone`; trait objects cannot derive it).
    fn clone_box(&self) -> Box<dyn PlacementBackend>;
}

/// The original single-index layout: one global [`SharedIndex`], no
/// per-tenant routing.
#[derive(Debug, Clone)]
pub struct SingleBackend {
    shared: SharedIndex,
}

impl SingleBackend {
    /// Creates an empty single-index backend for replication factor
    /// `gamma`.
    #[must_use]
    pub fn new(gamma: usize) -> Self {
        SingleBackend { shared: SharedIndex::new(gamma) }
    }
}

impl PlacementBackend for SingleBackend {
    fn push_bin(&mut self) {
        self.shared.push_bin();
    }

    fn bin_count(&self) -> usize {
        self.shared.len()
    }

    fn add_shared(&mut self, _tenant: TenantId, a: BinId, b: BinId, delta: f64) {
        self.shared.add(a, b, delta);
    }

    fn sub_shared(&mut self, _tenant: TenantId, a: BinId, b: BinId, delta: f64) {
        self.shared.sub(a, b, delta);
    }

    fn add_level(&mut self, _tenant: TenantId, _bin: BinId, _delta: f64) {}

    fn shared_load(&self, a: BinId, b: BinId) -> f64 {
        self.shared.get(a, b)
    }

    fn worst_failover(&self, bin: BinId) -> f64 {
        self.shared.worst_failover(bin)
    }

    fn top_shared_sum_with(&self, bin: BinId, adjustments: &[(BinId, f64)], k: usize) -> f64 {
        self.shared.top_shared_sum_with(bin, adjustments, k)
    }

    fn failover_from(&self, bin: BinId, failed: &[BinId]) -> f64 {
        self.shared.failover_from(bin, failed)
    }

    fn peers(&self, bin: BinId) -> Vec<(BinId, f64)> {
        self.shared.peers(bin).collect()
    }

    fn begin_batch(&mut self) {
        self.shared.begin_deferred();
    }

    fn end_batch(&mut self) {
        self.shared.end_deferred();
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn shard_of(&self, _tenant: TenantId) -> usize {
        0
    }

    fn reconcile(&self, _levels: &[f64]) -> Vec<String> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn PlacementBackend> {
        Box::new(self.clone())
    }
}

/// One placement shard: the derived state contributed by the tenants this
/// shard owns.
#[derive(Debug, Clone)]
struct Shard {
    shared: SharedIndex,
    levels: Vec<f64>,
}

/// Hash-partitioned backend: per-shard derived state plus a merged view
/// that stays bit-identical to [`SingleBackend`].
///
/// Routing is `tenant_id mod shards` — tenant ids are dense in every
/// workload generator, so the modulus spreads load evenly without a hash
/// round.
#[derive(Debug, Clone)]
pub struct ShardedBackend {
    shards: Vec<Shard>,
    merged: SharedIndex,
}

impl ShardedBackend {
    /// Creates an empty backend with `shards` partitions for replication
    /// factor `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(gamma: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded backend needs at least one shard");
        ShardedBackend {
            shards: (0..shards)
                .map(|_| Shard { shared: SharedIndex::new(gamma), levels: Vec::new() })
                .collect(),
            merged: SharedIndex::new(gamma),
        }
    }
}

impl PlacementBackend for ShardedBackend {
    fn push_bin(&mut self) {
        self.merged.push_bin();
        for shard in &mut self.shards {
            shard.shared.push_bin();
            shard.levels.push(0.0);
        }
    }

    fn bin_count(&self) -> usize {
        self.merged.len()
    }

    fn add_shared(&mut self, tenant: TenantId, a: BinId, b: BinId, delta: f64) {
        self.merged.add(a, b, delta);
        let shard = self.shard_of(tenant);
        self.shards[shard].shared.add(a, b, delta);
    }

    fn sub_shared(&mut self, tenant: TenantId, a: BinId, b: BinId, delta: f64) {
        self.merged.sub(a, b, delta);
        let shard = self.shard_of(tenant);
        self.shards[shard].shared.sub(a, b, delta);
    }

    fn add_level(&mut self, tenant: TenantId, bin: BinId, delta: f64) {
        let shard = self.shard_of(tenant);
        self.shards[shard].levels[bin.0] += delta;
    }

    fn shared_load(&self, a: BinId, b: BinId) -> f64 {
        self.merged.get(a, b)
    }

    fn worst_failover(&self, bin: BinId) -> f64 {
        self.merged.worst_failover(bin)
    }

    fn top_shared_sum_with(&self, bin: BinId, adjustments: &[(BinId, f64)], k: usize) -> f64 {
        self.merged.top_shared_sum_with(bin, adjustments, k)
    }

    fn failover_from(&self, bin: BinId, failed: &[BinId]) -> f64 {
        self.merged.failover_from(bin, failed)
    }

    fn peers(&self, bin: BinId) -> Vec<(BinId, f64)> {
        self.merged.peers(bin).collect()
    }

    fn begin_batch(&mut self) {
        self.merged.begin_deferred();
        for shard in &mut self.shards {
            shard.shared.begin_deferred();
        }
    }

    fn end_batch(&mut self) {
        self.merged.end_deferred();
        for shard in &mut self.shards {
            shard.shared.end_deferred();
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, tenant: TenantId) -> usize {
        (tenant.get() % self.shards.len() as u64) as usize
    }

    fn reconcile(&self, levels: &[f64]) -> Vec<String> {
        let mut divergences = Vec::new();
        let bins = self.merged.len();
        for bin in 0..bins {
            let id = BinId(bin);
            // Levels: the shard contributions must sum to the placement's
            // authoritative level. Bins hard-reset to 0.0 on emptying keep
            // residual float dust in the shard sums; the tolerance absorbs
            // it.
            let shard_level: f64 = self.shards.iter().map(|s| s.levels[bin]).sum();
            let expected = levels.get(bin).copied().unwrap_or(0.0);
            if (shard_level - expected).abs() > RECONCILE_TOLERANCE {
                divergences
                    .push(format!("level({id}): shard sum {shard_level} vs merged {expected}"));
            }
            // Shared rows, merged → shards: every merged entry must equal
            // the sum of the shard entries…
            for (peer, merged_value) in self.merged.peers(id) {
                let shard_value: f64 = self.shards.iter().map(|s| s.shared.get(id, peer)).sum();
                if (shard_value - merged_value).abs() > RECONCILE_TOLERANCE {
                    divergences.push(format!(
                        "shared({id}, {peer}): shard sum {shard_value} vs merged {merged_value}"
                    ));
                }
            }
            // …and shards → merged: a shard entry with no merged
            // counterpart is a routing bug (the merged map drops entries
            // that decrement to zero, so compare values, not presence).
            for shard in &self.shards {
                for (peer, value) in shard.shared.peers(id) {
                    if value > RECONCILE_TOLERANCE && self.merged.get(id, peer) == 0.0 {
                        let shard_value: f64 =
                            self.shards.iter().map(|s| s.shared.get(id, peer)).sum();
                        if shard_value.abs() > RECONCILE_TOLERANCE {
                            divergences.push(format!(
                                "shared({id}, {peer}): shard sum {shard_value} missing from merged"
                            ));
                        }
                    }
                }
            }
        }
        divergences.sort();
        divergences.dedup();
        divergences
    }

    fn clone_box(&self) -> Box<dyn PlacementBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> TenantId {
        TenantId::new(i)
    }

    fn bid(i: usize) -> BinId {
        BinId::new(i)
    }

    fn mirrored(gamma: usize, shards: usize, bins: usize) -> (SingleBackend, ShardedBackend) {
        let mut single = SingleBackend::new(gamma);
        let mut sharded = ShardedBackend::new(gamma, shards);
        for _ in 0..bins {
            single.push_bin();
            sharded.push_bin();
        }
        (single, sharded)
    }

    #[test]
    fn sharded_queries_match_single_bit_for_bit() {
        let (mut single, mut sharded) = mirrored(3, 4, 6);
        let ops: &[(u64, usize, usize, f64)] = &[
            (0, 0, 1, 0.21),
            (1, 0, 2, 0.17),
            (2, 1, 3, 0.09),
            (3, 2, 4, 0.33),
            (0, 0, 1, 0.05),
            (5, 3, 5, 0.11),
        ];
        for &(t, a, b, d) in ops {
            single.add_shared(tid(t), bid(a), bid(b), d);
            sharded.add_shared(tid(t), bid(a), bid(b), d);
        }
        sharded.sub_shared(tid(0), bid(0), bid(1), 0.05);
        single.sub_shared(tid(0), bid(0), bid(1), 0.05);
        for bin in 0..6 {
            assert_eq!(
                single.worst_failover(bid(bin)).to_bits(),
                sharded.worst_failover(bid(bin)).to_bits(),
                "bin {bin}: merged view must be bit-identical"
            );
            for peer in 0..6 {
                if bin != peer {
                    assert_eq!(
                        single.shared_load(bid(bin), bid(peer)).to_bits(),
                        sharded.shared_load(bid(bin), bid(peer)).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn shard_state_reconciles_with_merged() {
        let (_, mut sharded) = mirrored(2, 3, 4);
        sharded.add_shared(tid(0), bid(0), bid(1), 0.3);
        sharded.add_level(tid(0), bid(0), 0.3);
        sharded.add_level(tid(0), bid(1), 0.3);
        sharded.add_shared(tid(1), bid(1), bid(2), 0.2);
        sharded.add_level(tid(1), bid(1), 0.2);
        sharded.add_level(tid(1), bid(2), 0.2);
        sharded.add_shared(tid(2), bid(0), bid(1), 0.1);
        sharded.add_level(tid(2), bid(0), 0.1);
        sharded.add_level(tid(2), bid(1), 0.1);
        let levels = [0.4, 0.6, 0.2, 0.0];
        assert!(sharded.reconcile(&levels).is_empty());
        // Tenants 0 and 2 live on different shards but share the same bin
        // pair; the merged entry must be their sum.
        assert!((sharded.shared_load(bid(0), bid(1)) - 0.4).abs() < 1e-12);
        assert_ne!(sharded.shard_of(tid(0)), sharded.shard_of(tid(2)));
    }

    #[test]
    fn reconcile_detects_misrouted_delta() {
        let (_, mut sharded) = mirrored(2, 2, 3);
        sharded.add_shared(tid(0), bid(0), bid(1), 0.3);
        sharded.add_level(tid(0), bid(0), 0.3);
        sharded.add_level(tid(0), bid(1), 0.3);
        // Forge a level delta on the wrong magnitude: shard sums no longer
        // match the authoritative levels.
        sharded.add_level(tid(1), bid(0), 0.5);
        let divergences = sharded.reconcile(&[0.3, 0.3, 0.0]);
        assert!(
            divergences.iter().any(|d| d.starts_with("level(bin#0)")),
            "forged level delta must surface: {divergences:?}"
        );
    }

    #[test]
    fn deferred_batch_matches_sequential_maintenance() {
        let (mut eager, mut deferred) = mirrored(3, 2, 5);
        for &(t, a, b, d) in
            &[(0u64, 0usize, 1usize, 0.4f64), (1, 0, 2, 0.3), (2, 1, 3, 0.2), (3, 0, 4, 0.25)]
        {
            eager.add_shared(tid(t), bid(a), bid(b), d);
            deferred.add_shared(tid(t), bid(a), bid(b), d);
        }
        deferred.begin_batch();
        deferred.sub_shared(tid(0), bid(0), bid(1), 0.4);
        deferred.sub_shared(tid(1), bid(0), bid(2), 0.15);
        deferred.end_batch();
        eager.sub_shared(tid(0), bid(0), bid(1), 0.4);
        eager.sub_shared(tid(1), bid(0), bid(2), 0.15);
        for bin in 0..5 {
            assert!(
                (eager.worst_failover(bid(bin)) - deferred.worst_failover(bid(bin))).abs() < 1e-12,
                "bin {bin}"
            );
        }
    }

    #[test]
    fn shard_routing_is_stable_modulo() {
        let sharded = ShardedBackend::new(2, 4);
        assert_eq!(sharded.shard_of(tid(0)), 0);
        assert_eq!(sharded.shard_of(tid(5)), 1);
        assert_eq!(sharded.shard_of(tid(7)), 3);
        assert_eq!(sharded.shard_count(), 4);
        let single = SingleBackend::new(2);
        assert_eq!(single.shard_of(tid(7)), 0);
        assert_eq!(single.shard_count(), 1);
    }
}
