//! Online re-replication after server failures.
//!
//! When a set of at most `γ − 1` servers fails simultaneously, every tenant
//! keeps at least one live replica (replicas sit on distinct servers), but
//! the placement is *degraded*: the failed replicas' load is served by
//! survivors and Theorem 1 no longer bounds a further failure. Recovery
//! re-homes each orphaned replica onto a surviving — or freshly opened —
//! server through the same robustness predicate used for placement, so the
//! γ−1-failure guarantee holds again once recovery completes.
//!
//! The module provides the algorithm-independent pieces: enumerating
//! orphans ([`orphans`]), the conservative per-move feasibility predicate
//! ([`move_feasible`]), candidate selection ([`pick_target`]) and a
//! sequential driver ([`recover_replicas`]) that applies moves via
//! [`Placement::move_replica`] and tallies the [`RecoveryReport`].
//! Algorithms with derived indexes call the driver with hooks that re-key
//! exactly the bins each move touches.
//!
//! [`move_feasible`] is conservative in one deliberate way: it ignores the
//! shared load the source (failed) bin still carries in the matrix at check
//! time. Real post-recovery reserves are therefore at most what was
//! checked, never more, so a sequence of accepted moves composes into a
//! robust final state — shared loads only ever change between bins of the
//! tenant being moved, and every such bin is re-checked by that move.

use crate::bin::BinId;
use crate::error::Result;
use crate::placement::Placement;
use crate::tenant::TenantId;
use crate::EPSILON;

/// Cost of re-replicating after a failure event (or, when aggregated, a
/// whole run of failure events).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecoveryReport {
    /// Distinct tenants that had at least one replica re-homed.
    pub tenants_affected: usize,
    /// Replicas migrated off failed servers.
    pub replicas_migrated: usize,
    /// Total replica load moved (sum of migrated replica sizes).
    pub moved_load: f64,
    /// Fresh bins opened because no surviving bin passed the predicate.
    pub bins_opened: usize,
}

impl RecoveryReport {
    /// Folds another report into this one (for run-level aggregation).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.tenants_affected += other.tenants_affected;
        self.replicas_migrated += other.replicas_migrated;
        self.moved_load += other.moved_load;
        self.bins_opened += other.bins_opened;
    }
}

/// The `(tenant, failed bin)` replicas orphaned by failing `failed`, in
/// tenant arrival order (a deterministic recovery schedule).
#[must_use]
pub fn orphans(placement: &Placement, failed: &[BinId]) -> Vec<(TenantId, BinId)> {
    let mut out = Vec::new();
    for (id, _, bins) in placement.tenants() {
        for &bin in bins {
            if failed.contains(&bin) {
                out.push((id, bin));
            }
        }
    }
    out
}

/// Whether moving `tenant`'s replica from `from` to `to` keeps every
/// involved bin within the γ−1-failure reserve.
///
/// Checks the target (current level plus the incoming replica plus its
/// reserve with the tenant's surviving siblings counted at their new
/// shares) and every surviving sibling (whose share with `to` grows by the
/// replica). The share still recorded with `from` is *not* subtracted — an
/// upper bound, see the module docs.
#[must_use]
pub fn move_feasible(placement: &Placement, tenant: TenantId, from: BinId, to: BinId) -> bool {
    let Some(bins) = placement.tenant_bins(tenant) else {
        return false;
    };
    if !bins.contains(&from) || bins.contains(&to) {
        return false;
    }
    let load = placement.tenant_load(tenant).expect("tenant has bins, so it has a load");
    let replica = load / placement.gamma() as f64;
    let adjustments: Vec<(BinId, f64)> =
        bins.iter().copied().filter(|&b| b != from).map(|b| (b, replica)).collect();
    let level = placement.level(to);
    if level + replica + placement.worst_failover_with(to, &adjustments) > 1.0 + EPSILON {
        return false;
    }
    bins.iter().filter(|&&b| b != from).all(|&b| {
        placement.level(b) + placement.worst_failover_with(b, &[(to, replica)]) <= 1.0 + EPSILON
    })
}

/// The first candidate that is alive, distinct from the tenant's other
/// bins, and passes [`move_feasible`]; `None` if no candidate qualifies
/// (the caller then opens a fresh bin, which always qualifies).
pub fn pick_target<I>(
    placement: &Placement,
    tenant: TenantId,
    from: BinId,
    failed: &[BinId],
    candidates: I,
) -> Option<BinId>
where
    I: IntoIterator<Item = BinId>,
{
    candidates
        .into_iter()
        .find(|&to| !failed.contains(&to) && move_feasible(placement, tenant, from, to))
}

/// Sequentially re-homes every orphaned replica.
///
/// `pick` chooses a surviving target for `(tenant, from, replica_size)` —
/// typically via [`pick_target`] over an algorithm-specific candidate
/// order — or returns `None` to open a fresh bin. `after_move` runs after
/// each applied move with `(placement, tenant, from, to, replica_size)` so
/// callers can re-key derived indexes for exactly the affected bins and
/// emit per-move telemetry.
///
/// # Errors
///
/// Propagates [`Placement::move_replica`] invariant violations.
pub fn recover_replicas(
    placement: &mut Placement,
    failed: &[BinId],
    mut pick: impl FnMut(&Placement, TenantId, BinId, f64) -> Option<BinId>,
    mut after_move: impl FnMut(&Placement, TenantId, BinId, BinId, f64),
) -> Result<RecoveryReport> {
    let orphan_list = orphans(placement, failed);
    let mut report = RecoveryReport::default();
    let mut affected: Vec<TenantId> = Vec::new();
    for (tenant, from) in orphan_list {
        if !affected.contains(&tenant) {
            affected.push(tenant);
        }
        let load = placement.tenant_load(tenant).expect("orphaned tenants are placed");
        let replica = load / placement.gamma() as f64;
        let to = match pick(placement, tenant, from, replica) {
            Some(bin) => bin,
            None => {
                report.bins_opened += 1;
                placement.open_bin(None)
            }
        };
        placement.move_replica(tenant, from, to)?;
        report.replicas_migrated += 1;
        report.moved_load += replica;
        after_move(placement, tenant, from, to, replica);
    }
    report.tenants_affected = affected.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;
    use crate::tenant::Tenant;

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    fn scan_all(p: &Placement, t: TenantId, from: BinId, failed: &[BinId]) -> Option<BinId> {
        pick_target(p, t, from, failed, (0..p.created_bins()).map(BinId::new))
    }

    #[test]
    fn orphans_enumerate_in_arrival_order() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(3, 0.4), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.4), &[b[0], b[2]]).unwrap();
        p.place_tenant(&tenant(2, 0.4), &[b[2], b[3]]).unwrap();
        let got = orphans(&p, &[b[0]]);
        assert_eq!(got, vec![(TenantId::new(3), b[0]), (TenantId::new(1), b[0])]);
        assert!(orphans(&p, &[]).is_empty());
    }

    #[test]
    fn move_feasible_guards_target_and_siblings() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.8), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.9), &[b[2], b[3]]).unwrap();
        // Moving tenant 0's replica from b0 onto b2 would give b2 a level
        // of 0.45 + 0.4 and a reserve of max(0.45, 0.4) → over capacity.
        assert!(!move_feasible(&p, TenantId::new(0), b[0], b[2]));
        // A fresh bin always works: level 0.4 + reserve 0.4 ≤ 1.
        let fresh = p.open_bin(None);
        assert!(move_feasible(&p, TenantId::new(0), b[0], fresh));
        // Endpoint misuse is rejected rather than miscounted.
        assert!(!move_feasible(&p, TenantId::new(0), b[2], fresh));
        assert!(!move_feasible(&p, TenantId::new(0), b[0], b[1]));
        assert!(!move_feasible(&p, TenantId::new(7), b[0], fresh));
    }

    #[test]
    fn recovery_restores_robustness_after_worst_case_failures() {
        // γ = 3: fail two of the servers of a loaded placement, recover,
        // and demand Theorem 1 holds again with the failed bins empty.
        let mut p = Placement::new(3);
        let b: Vec<BinId> = (0..6).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.9), &[b[0], b[1], b[2]]).unwrap();
        p.place_tenant(&tenant(1, 0.6), &[b[3], b[4], b[5]]).unwrap();
        p.place_tenant(&tenant(2, 0.3), &[b[0], b[3], b[5]]).unwrap();
        let failed = [b[0], b[3]];
        let report = recover_replicas(
            &mut p,
            &failed,
            |p, t, from, _| scan_all(p, t, from, &failed),
            |_, _, _, _, _| {},
        )
        .unwrap();
        assert_eq!(report.replicas_migrated, 4);
        assert_eq!(report.tenants_affected, 3);
        assert!((report.moved_load - (0.3 + 0.2 + 0.1 + 0.1)).abs() < 1e-12);
        assert_eq!(p.level(b[0]), 0.0);
        assert_eq!(p.level(b[3]), 0.0);
        assert!(p.is_robust(), "recovery must re-establish the γ−1 guarantee");
        // Every tenant still has γ distinct live replicas.
        for (_, _, bins) in p.tenants() {
            assert_eq!(bins.len(), 3);
            assert!(!bins.contains(&b[0]) && !bins.contains(&b[3]));
        }
    }

    #[test]
    fn recovery_opens_fresh_bins_when_no_survivor_fits() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 1.0), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 1.0), &[b[2], b[3]]).unwrap();
        // Failing b0 leaves no surviving bin that can absorb a 0.5 replica
        // (every survivor is at level 0.5 with reserve 0.5).
        let failed = [b[0]];
        let before = p.created_bins();
        let report = recover_replicas(
            &mut p,
            &failed,
            |p, t, from, _| scan_all(p, t, from, &failed),
            |_, _, _, _, _| {},
        )
        .unwrap();
        assert_eq!(report.bins_opened, 1);
        assert_eq!(p.created_bins(), before + 1);
        assert!(p.is_robust());
    }

    #[test]
    fn report_aggregation() {
        let mut total = RecoveryReport::default();
        total.absorb(&RecoveryReport {
            tenants_affected: 2,
            replicas_migrated: 3,
            moved_load: 0.5,
            bins_opened: 1,
        });
        total.absorb(&RecoveryReport {
            tenants_affected: 1,
            replicas_migrated: 1,
            moved_load: 0.25,
            bins_opened: 0,
        });
        assert_eq!(total.tenants_affected, 3);
        assert_eq!(total.replicas_migrated, 4);
        assert!((total.moved_load - 0.75).abs() < 1e-12);
        assert_eq!(total.bins_opened, 1);
    }
}
