//! CubeFit configuration.

use crate::class::Classifier;
use crate::error::{Error, Result};

/// How tiny (class-`K`) tenants are aggregated into multi-replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TinyPolicy {
    /// The theoretical scheme of paper §III: multi-replicas of total size at
    /// most `1/α_K` (where `α_K` is the largest integer with
    /// `α_K² + α_K < K`), placed as replicas of class `α_K − γ + 1`.
    ///
    /// Requires `α_K ≥ γ`; [`CubeFitConfigBuilder::build`] rejects
    /// configurations where it is undefined (e.g. `K = 10, γ = 3`).
    Theoretical,
    /// The empirical scheme the paper's evaluation uses (§V.A): aggregate
    /// tiny replicas into multi-replicas capped at the class-`(K−1)` slot
    /// size `1/(K+γ−2)` and place them as class-`(K−1)` replicas.
    #[default]
    ClassKMinus1,
}

/// Which mature bins stage 1 may reuse for a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Stage1Eligibility {
    /// Only mature bins of a class strictly smaller than the replica's
    /// class, i.e. bins built for *larger* replicas (paper §III: "the
    /// algorithm uses \[the leftover space\] to place smaller replicas").
    #[default]
    SmallerClassBins,
    /// Any mature bin that m-fits the replica. Theorem 1 only relies on the
    /// m-fit predicate, so this is also robust; exposed for ablations.
    AnyMatureBin,
}

/// Configuration of the [`crate::CubeFit`] consolidator.
///
/// Construct via [`CubeFitConfig::builder`]:
///
/// ```
/// use cubefit_core::CubeFitConfig;
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let config = CubeFitConfig::builder()
///     .replication(3)
///     .classes(10)
///     .build()?;
/// assert_eq!(config.gamma(), 3);
/// assert_eq!(config.classes(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CubeFitConfig {
    gamma: usize,
    classes: usize,
    tiny_policy: TinyPolicy,
    stage1: Stage1Eligibility,
    tiny_stage1: bool,
    scan_limit: usize,
}

impl CubeFitConfig {
    /// Starts building a configuration. Defaults: `γ = 2`, `K = 10`,
    /// [`TinyPolicy::ClassKMinus1`], [`Stage1Eligibility::SmallerClassBins`].
    #[must_use]
    pub fn builder() -> CubeFitConfigBuilder {
        CubeFitConfigBuilder::default()
    }

    /// Replication factor `γ` (number of replicas per tenant; the placement
    /// tolerates `γ − 1` simultaneous server failures).
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Number of size classes `K`.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Tiny-tenant aggregation policy.
    #[must_use]
    pub fn tiny_policy(&self) -> TinyPolicy {
        self.tiny_policy
    }

    /// Stage-1 mature-bin eligibility rule.
    #[must_use]
    pub fn stage1_eligibility(&self) -> Stage1Eligibility {
        self.stage1
    }

    /// Whether tiny tenants attempt stage-1 reuse of mature-bin leftover
    /// space before opening multi-replica slots (§V.A's empirical
    /// optimization: "the first stage of the algorithm re-uses the left
    /// over space of server slots in the K−1 class").
    #[must_use]
    pub fn tiny_stage1(&self) -> bool {
        self.tiny_stage1
    }

    /// Maximum mature-bin candidates inspected per replica during stage-1
    /// Best-Fit scans.
    #[must_use]
    pub fn scan_limit(&self) -> usize {
        self.scan_limit
    }

    /// The size classifier induced by this configuration.
    #[must_use]
    pub fn classifier(&self) -> Classifier {
        Classifier::new(self.classes, self.gamma)
    }

    /// The class multi-replicas are treated as, and the size they are capped
    /// at, under the configured [`TinyPolicy`].
    ///
    /// Returns `(class_index, cap)`.
    #[must_use]
    pub fn tiny_target(&self) -> (usize, f64) {
        match self.tiny_policy {
            TinyPolicy::Theoretical => {
                let alpha = self.classifier().alpha().expect("validated at construction");
                (alpha - self.gamma + 1, 1.0 / alpha as f64)
            }
            TinyPolicy::ClassKMinus1 => {
                let tau = self.classes - 1;
                (tau, 1.0 / (tau + self.gamma - 1) as f64)
            }
        }
    }
}

impl Default for CubeFitConfig {
    fn default() -> Self {
        CubeFitConfig::builder().build().expect("default configuration is valid")
    }
}

/// Builder for [`CubeFitConfig`].
#[derive(Debug, Clone, Default)]
pub struct CubeFitConfigBuilder {
    gamma: Option<usize>,
    classes: Option<usize>,
    tiny_policy: TinyPolicy,
    stage1: Stage1Eligibility,
    tiny_stage1: Option<bool>,
    scan_limit: Option<usize>,
}

impl CubeFitConfigBuilder {
    /// Sets the replication factor `γ` (typically 2 or 3).
    #[must_use]
    pub fn replication(mut self, gamma: usize) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Sets the number of size classes `K`. The paper suggests `K = 10` for
    /// large data centers and `K = 5` for smaller settings.
    #[must_use]
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Sets the tiny-tenant aggregation policy.
    #[must_use]
    pub fn tiny_policy(mut self, policy: TinyPolicy) -> Self {
        self.tiny_policy = policy;
        self
    }

    /// Sets the stage-1 mature-bin eligibility rule.
    #[must_use]
    pub fn stage1_eligibility(mut self, rule: Stage1Eligibility) -> Self {
        self.stage1 = rule;
        self
    }

    /// Enables or disables stage-1 reuse for tiny tenants (default:
    /// enabled, per the paper's §V.A empirical note). Disabling routes
    /// every tiny tenant straight to the multi-replica path, as in the
    /// theoretical Algorithm 1 — exposed for ablations.
    #[must_use]
    pub fn tiny_stage1(mut self, enabled: bool) -> Self {
        self.tiny_stage1 = Some(enabled);
        self
    }

    /// Bounds how many mature-bin candidates a stage-1 Best-Fit scan
    /// inspects per replica (default 512).
    ///
    /// The bound keeps placement `O(1)` amortized at data-center scale; it
    /// only affects which of several *feasible* mature bins is chosen, and
    /// only once the mature population exceeds the limit. Use
    /// `usize::MAX` for the unbounded scan of Algorithm 1.
    #[must_use]
    pub fn scan_limit(mut self, limit: usize) -> Self {
        self.scan_limit = Some(limit.max(1));
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidReplication`] if `γ < 2`;
    /// * [`Error::InvalidClasses`] if `K < 2`;
    /// * [`Error::TinyPolicyUnsupported`] if [`TinyPolicy::Theoretical`] was
    ///   requested but `α_K < γ` (the multi-replica target class would not
    ///   exist).
    pub fn build(self) -> Result<CubeFitConfig> {
        let gamma = self.gamma.unwrap_or(2);
        let classes = self.classes.unwrap_or(10);
        if gamma < 2 {
            return Err(Error::InvalidReplication { gamma });
        }
        if classes < 2 {
            return Err(Error::InvalidClasses {
                classes,
                reason: "CubeFit needs at least two classes (one regular, one tiny)",
            });
        }
        if self.tiny_policy == TinyPolicy::Theoretical {
            let alpha = Classifier::new(classes, gamma).alpha().unwrap_or(0);
            if alpha < gamma {
                return Err(Error::TinyPolicyUnsupported { classes, gamma, alpha });
            }
        }
        Ok(CubeFitConfig {
            gamma,
            classes,
            tiny_policy: self.tiny_policy,
            stage1: self.stage1,
            tiny_stage1: self.tiny_stage1.unwrap_or(true),
            scan_limit: self.scan_limit.unwrap_or(512),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendation() {
        let c = CubeFitConfig::default();
        assert_eq!(c.gamma(), 2);
        assert_eq!(c.classes(), 10);
        assert_eq!(c.tiny_policy(), TinyPolicy::ClassKMinus1);
        assert_eq!(c.stage1_eligibility(), Stage1Eligibility::SmallerClassBins);
        assert!(c.tiny_stage1());
        assert_eq!(c.scan_limit(), 512);
    }

    #[test]
    fn builder_overrides_scan_and_tiny_stage1() {
        let c = CubeFitConfig::builder().tiny_stage1(false).scan_limit(0).build().unwrap();
        assert!(!c.tiny_stage1());
        assert_eq!(c.scan_limit(), 1, "limit is clamped to at least 1");
    }

    #[test]
    fn rejects_invalid_gamma_and_classes() {
        assert!(matches!(
            CubeFitConfig::builder().replication(1).build(),
            Err(Error::InvalidReplication { gamma: 1 })
        ));
        assert!(matches!(
            CubeFitConfig::builder().classes(1).build(),
            Err(Error::InvalidClasses { classes: 1, .. })
        ));
    }

    #[test]
    fn theoretical_policy_needs_large_k() {
        // K = 10, γ = 3 → α = 2 < 3: rejected.
        assert!(CubeFitConfig::builder()
            .replication(3)
            .classes(10)
            .tiny_policy(TinyPolicy::Theoretical)
            .build()
            .is_err());
        // K = 13, γ = 3 → α = 3: accepted, multi-replicas land in class 1.
        let c = CubeFitConfig::builder()
            .replication(3)
            .classes(13)
            .tiny_policy(TinyPolicy::Theoretical)
            .build()
            .unwrap();
        assert_eq!(c.tiny_target(), (1, 1.0 / 3.0));
    }

    #[test]
    fn theoretical_policy_gamma2() {
        // K = 10, γ = 2 → α = 2 ≥ 2: multi-replicas as class 1, cap 1/2.
        let c = CubeFitConfig::builder()
            .replication(2)
            .classes(10)
            .tiny_policy(TinyPolicy::Theoretical)
            .build()
            .unwrap();
        assert_eq!(c.tiny_target(), (1, 0.5));
    }

    #[test]
    fn empirical_policy_targets_class_k_minus_1() {
        let c = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
        let (tau, cap) = c.tiny_target();
        assert_eq!(tau, 4);
        assert!((cap - 0.2).abs() < 1e-12); // 1/(4+2−1) = 1/5
    }

    #[test]
    fn classifier_reflects_config() {
        let c = CubeFitConfig::builder().replication(3).classes(7).build().unwrap();
        assert_eq!(c.classifier().classes(), 7);
        assert_eq!(c.classifier().gamma(), 3);
    }
}
