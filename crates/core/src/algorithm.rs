//! The [`Consolidator`] trait implemented by every placement algorithm.

use crate::bin::BinId;
use crate::error::Result;
use crate::placement::Placement;
use crate::tenant::{Tenant, TenantId};
use cubefit_telemetry::Recorder;

/// Which path of an algorithm placed a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlacementStage {
    /// CubeFit stage 1: reuse of mature-bin leftover space via m-fit.
    MatureFit,
    /// CubeFit stage 2: cube-addressed slot placement.
    Cube,
    /// CubeFit stage 2 via the tiny-tenant multi-replica path.
    MultiReplica,
    /// Baseline algorithms place directly without stages.
    Direct,
}

/// Where an accepted tenant's replicas went.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementOutcome {
    /// The placed tenant.
    pub tenant: TenantId,
    /// The `γ` bins hosting the tenant's replicas.
    pub bins: Vec<BinId>,
    /// How many new bins the placement opened.
    pub opened: usize,
    /// Which algorithm path handled the tenant.
    pub stage: PlacementStage,
}

/// An online consolidation algorithm.
///
/// Implementations receive tenants one at a time (the online model of
/// paper §II) and must immediately and irrevocably assign all `γ` replicas.
/// The trait is object-safe so harnesses can drive a heterogeneous set of
/// algorithms:
///
/// ```
/// use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let config = CubeFitConfig::builder().replication(2).classes(5).build()?;
/// let mut algorithms: Vec<Box<dyn Consolidator>> = vec![Box::new(CubeFit::new(config))];
/// for algorithm in &mut algorithms {
///     algorithm.place(Tenant::with_load(Load::new(0.4)?))?;
///     assert_eq!(algorithm.placement().tenant_count(), 1);
/// }
/// # Ok(())
/// # }
/// ```
pub trait Consolidator {
    /// Places all `γ` replicas of `tenant`.
    ///
    /// # Errors
    ///
    /// Returns an error if the tenant id was already placed or an internal
    /// invariant is violated; well-formed tenants are otherwise always
    /// accepted (algorithms may always open fresh servers).
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome>;

    /// Read access to the placement built so far.
    fn placement(&self) -> &Placement;

    /// Replication factor `γ` the algorithm was configured with.
    fn gamma(&self) -> usize {
        self.placement().gamma()
    }

    /// Short human-readable algorithm name (for reports and plots).
    fn name(&self) -> &'static str;

    /// Attaches a telemetry recorder. Instrumented algorithms resolve
    /// their counters and stream [`cubefit_telemetry::TraceEvent`]s into
    /// it; the default implementation ignores the recorder, so plain
    /// algorithms need no telemetry code.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }
}

impl Consolidator for Box<dyn Consolidator> {
    /// Delegates to the boxed algorithm.
    ///
    /// # Errors
    ///
    /// Propagates the boxed algorithm's errors untouched.
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        (**self).place(tenant)
    }

    fn placement(&self) -> &Placement {
        (**self).placement()
    }

    fn gamma(&self) -> usize {
        (**self).gamma()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        (**self).set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;

    /// Minimal consolidator used to exercise trait defaults: every tenant
    /// gets γ fresh bins.
    struct FreshBins {
        placement: Placement,
    }

    impl Consolidator for FreshBins {
        fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
            let gamma = self.placement.gamma();
            let bins: Vec<BinId> = (0..gamma).map(|_| self.placement.open_bin(None)).collect();
            self.placement.place_tenant(&tenant, &bins)?;
            Ok(PlacementOutcome {
                tenant: tenant.id(),
                opened: bins.len(),
                bins,
                stage: PlacementStage::Direct,
            })
        }

        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn name(&self) -> &'static str {
            "fresh-bins"
        }
    }

    #[test]
    fn trait_defaults_and_object_safety() {
        let mut boxed: Box<dyn Consolidator> = Box::new(FreshBins { placement: Placement::new(3) });
        assert_eq!(boxed.gamma(), 3);
        // The default recorder hook is a no-op and keeps the trait
        // object-safe.
        boxed.set_recorder(Recorder::enabled());
        let outcome = boxed.place(Tenant::with_load(Load::new(0.3).unwrap())).unwrap();
        assert_eq!(outcome.bins.len(), 3);
        assert_eq!(outcome.opened, 3);
        assert_eq!(outcome.stage, PlacementStage::Direct);
        assert_eq!(boxed.name(), "fresh-bins");
        assert!(boxed.placement().is_robust());
    }
}
