//! The [`Consolidator`] trait implemented by every placement algorithm.

use crate::bin::BinId;
use crate::error::Result;
use crate::placement::Placement;
use crate::recovery::RecoveryReport;
use crate::tenant::{Tenant, TenantId};
use cubefit_telemetry::Recorder;

/// Which path of an algorithm placed a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlacementStage {
    /// CubeFit stage 1: reuse of mature-bin leftover space via m-fit.
    MatureFit,
    /// CubeFit stage 2: cube-addressed slot placement.
    Cube,
    /// CubeFit stage 2 via the tiny-tenant multi-replica path.
    MultiReplica,
    /// Baseline algorithms place directly without stages.
    Direct,
}

/// Where an accepted tenant's replicas went.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementOutcome {
    /// The placed tenant.
    pub tenant: TenantId,
    /// The `γ` bins hosting the tenant's replicas.
    pub bins: Vec<BinId>,
    /// How many new bins the placement opened.
    pub opened: usize,
    /// Which algorithm path handled the tenant.
    pub stage: PlacementStage,
}

/// What a tenant's departure released.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RemovalOutcome {
    /// The departed tenant.
    pub tenant: TenantId,
    /// The tenant's full load (now released).
    pub load: f64,
    /// The `γ` bins that hosted the tenant's replicas.
    pub bins: Vec<BinId>,
}

/// What an in-place load re-estimation changed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadUpdateOutcome {
    /// The drifting tenant.
    pub tenant: TenantId,
    /// The load the placement tracked before the update.
    pub old_load: f64,
    /// The re-estimated load now in effect.
    pub new_load: f64,
    /// The `γ` bins hosting the tenant's replicas (unchanged by the
    /// update).
    pub bins: Vec<BinId>,
}

impl LoadUpdateOutcome {
    /// Signed full-tenant load change (`new − old`).
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.new_load - self.old_load
    }
}

/// An online consolidation algorithm.
///
/// Implementations receive tenants one at a time (the online model of
/// paper §II) and must immediately and irrevocably assign all `γ` replicas.
/// Tenants may also *depart* ([`Consolidator::remove`]), and servers may
/// fail ([`Consolidator::recover`]); implementations keep their derived
/// indexes consistent through both so robustness holds under churn.
/// The trait is object-safe so harnesses can drive a heterogeneous set of
/// algorithms:
///
/// ```
/// use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let config = CubeFitConfig::builder().replication(2).classes(5).build()?;
/// let mut algorithms: Vec<Box<dyn Consolidator>> = vec![Box::new(CubeFit::new(config))];
/// for algorithm in &mut algorithms {
///     algorithm.place(Tenant::with_load(Load::new(0.4)?))?;
///     assert_eq!(algorithm.placement().tenant_count(), 1);
/// }
/// # Ok(())
/// # }
/// ```
pub trait Consolidator {
    /// Places all `γ` replicas of `tenant`.
    ///
    /// # Errors
    ///
    /// Returns an error if the tenant id was already placed or an internal
    /// invariant is violated; well-formed tenants are otherwise always
    /// accepted (algorithms may always open fresh servers).
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome>;

    /// Removes a departed tenant's `γ` replicas, releasing their load and
    /// updating any internal indexes the algorithm keeps.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnknownTenant`] if the tenant is not
    /// currently placed.
    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome>;

    /// Re-places every replica orphaned by the simultaneous failure of the
    /// given bins onto surviving (or newly opened) bins, through the same
    /// robustness predicate the algorithm places with, so that Theorem 1
    /// holds again once recovery completes.
    ///
    /// Failed bins end up hosting nothing; callers model them as repaired
    /// (or decommissioned and their ids recycled) afterwards.
    ///
    /// # Errors
    ///
    /// Propagates placement-substrate invariant violations; a recovery
    /// target always exists because fresh bins accept any replica.
    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport>;

    /// Re-estimates `tenant`'s load in place (its replicas stay where they
    /// are), keeping every derived index the algorithm maintains
    /// consistent — the load-drift primitive.
    ///
    /// An upward drift can push hosting bins past the Theorem-1 reserve;
    /// the method still applies the measurement (declared loads track
    /// reality, not the other way around) and callers watch the resulting
    /// health with [`crate::monitor::classify`] and react with the
    /// mitigation planner.
    ///
    /// # Errors
    ///
    /// * [`crate::Error::InvalidLoad`] if `new_load` is not a finite number
    ///   in `(0, 1]`;
    /// * [`crate::Error::UnknownTenant`] if the tenant is not currently
    ///   placed.
    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome>;

    /// Places a batch of tenants, in order, as if [`Consolidator::place`]
    /// had been called once per tenant.
    ///
    /// The default implementation *is* that sequential loop, so every
    /// algorithm supports batching out of the box. Implementations may
    /// override it with an amortized index-maintenance fast path, but the
    /// resulting placement (bins chosen, outcomes, robustness verdict) must
    /// be identical to the sequential loop — batching is a throughput
    /// optimization, never a semantic change.
    ///
    /// # Errors
    ///
    /// Fail-fast: the first per-tenant error aborts the batch. Tenants
    /// placed before the failing one stay placed (exactly as if the caller
    /// had looped manually).
    fn place_batch(&mut self, tenants: Vec<Tenant>) -> Result<Vec<PlacementOutcome>> {
        tenants.into_iter().map(|tenant| self.place(tenant)).collect()
    }

    /// Removes a batch of departed tenants, in order, as if
    /// [`Consolidator::remove`] had been called once per tenant. Same
    /// equivalence and fail-fast contract as [`Consolidator::place_batch`].
    ///
    /// # Errors
    ///
    /// Fail-fast on the first [`crate::Error::UnknownTenant`]; earlier
    /// removals in the batch stay applied.
    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        tenants.iter().map(|tenant| self.remove(*tenant)).collect()
    }

    /// Applies a batch of load re-estimations, in order, as if
    /// [`Consolidator::update_load`] had been called once per entry. Same
    /// equivalence and fail-fast contract as [`Consolidator::place_batch`].
    ///
    /// # Errors
    ///
    /// Fail-fast on the first invalid load or unknown tenant; earlier
    /// updates in the batch stay applied.
    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        updates.iter().map(|(tenant, load)| self.update_load(*tenant, *load)).collect()
    }

    /// Re-partitions the algorithm's placement across `shards` derived-index
    /// shards (see [`crate::backend`]); 0 or 1 selects the single backend.
    ///
    /// Bit-identical cross-shard-count behaviour is only guaranteed when
    /// called before any tenant is placed (see
    /// [`crate::Placement::set_shards`]). The default implementation
    /// ignores the request — algorithms that own a [`Placement`] override
    /// it by delegating.
    fn set_shards(&mut self, shards: usize) {
        let _ = shards;
    }

    /// Moves one live replica of `tenant` from bin `from` to bin `to`,
    /// keeping every derived index the algorithm maintains consistent —
    /// the planned-migration primitive behind defragmentation.
    ///
    /// Unlike [`Consolidator::recover`], the source bin is healthy: the
    /// caller (e.g. a defrag executor) is responsible for checking
    /// [`crate::recovery::move_feasible`] *before* migrating; the method
    /// itself applies the move unconditionally so that a rollback (the
    /// inverse move sequence) is always possible.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::Placement::move_replica`] endpoint violations
    /// (unknown tenant, `from` not hosting it, `to` already hosting it).
    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()>;

    /// Clones the algorithm — placement, indexes, RNG state and all — into
    /// a new boxed trait object. Harnesses use this for tentative
    /// placements (e.g. overflow probing) without replaying history.
    fn clone_box(&self) -> Box<dyn Consolidator>;

    /// Read access to the placement built so far.
    fn placement(&self) -> &Placement;

    /// Replication factor `γ` the algorithm was configured with.
    fn gamma(&self) -> usize {
        self.placement().gamma()
    }

    /// Short human-readable algorithm name (for reports and plots).
    fn name(&self) -> &'static str;

    /// Attaches a telemetry recorder. Instrumented algorithms resolve
    /// their counters and stream [`cubefit_telemetry::TraceEvent`]s into
    /// it; the default implementation ignores the recorder, so plain
    /// algorithms need no telemetry code.
    fn set_recorder(&mut self, recorder: Recorder) {
        let _ = recorder;
    }
}

impl Consolidator for Box<dyn Consolidator> {
    /// Delegates to the boxed algorithm.
    ///
    /// # Errors
    ///
    /// Propagates the boxed algorithm's errors untouched.
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        (**self).place(tenant)
    }

    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        (**self).remove(tenant)
    }

    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        (**self).recover(failed)
    }

    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        (**self).update_load(tenant, new_load)
    }

    fn place_batch(&mut self, tenants: Vec<Tenant>) -> Result<Vec<PlacementOutcome>> {
        (**self).place_batch(tenants)
    }

    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        (**self).remove_batch(tenants)
    }

    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        (**self).update_load_batch(updates)
    }

    fn set_shards(&mut self, shards: usize) {
        (**self).set_shards(shards);
    }

    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        (**self).migrate(tenant, from, to)
    }

    fn clone_box(&self) -> Box<dyn Consolidator> {
        (**self).clone_box()
    }

    fn placement(&self) -> &Placement {
        (**self).placement()
    }

    fn gamma(&self) -> usize {
        (**self).gamma()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        (**self).set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;

    /// Minimal consolidator used to exercise trait defaults: every tenant
    /// gets γ fresh bins.
    #[derive(Clone)]
    struct FreshBins {
        placement: Placement,
    }

    impl Consolidator for FreshBins {
        fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
            let gamma = self.placement.gamma();
            let bins: Vec<BinId> = (0..gamma).map(|_| self.placement.open_bin(None)).collect();
            self.placement.place_tenant(&tenant, &bins)?;
            Ok(PlacementOutcome {
                tenant: tenant.id(),
                opened: bins.len(),
                bins,
                stage: PlacementStage::Direct,
            })
        }

        fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
            let (load, bins) = self.placement.remove_tenant(tenant)?;
            Ok(RemovalOutcome { tenant, load, bins })
        }

        fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
            crate::recovery::recover_replicas(
                &mut self.placement,
                failed,
                |p, t, from, _| {
                    crate::recovery::pick_target(
                        p,
                        t,
                        from,
                        failed,
                        (0..p.created_bins()).map(BinId::new),
                    )
                },
                |_, _, _, _, _| {},
            )
        }

        fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
            let (old_load, bins) = self.placement.update_load(tenant, new_load)?;
            Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
        }

        fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
            self.placement.move_replica(tenant, from, to)
        }

        fn clone_box(&self) -> Box<dyn Consolidator> {
            Box::new(self.clone())
        }

        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn name(&self) -> &'static str {
            "fresh-bins"
        }
    }

    #[test]
    fn trait_defaults_and_object_safety() {
        let mut boxed: Box<dyn Consolidator> = Box::new(FreshBins { placement: Placement::new(3) });
        assert_eq!(boxed.gamma(), 3);
        // The default recorder hook is a no-op and keeps the trait
        // object-safe.
        boxed.set_recorder(Recorder::enabled());
        let outcome = boxed.place(Tenant::with_load(Load::new(0.3).unwrap())).unwrap();
        assert_eq!(outcome.bins.len(), 3);
        assert_eq!(outcome.opened, 3);
        assert_eq!(outcome.stage, PlacementStage::Direct);
        assert_eq!(boxed.name(), "fresh-bins");
        assert!(boxed.placement().is_robust());
    }

    #[test]
    fn churn_methods_through_trait_objects() {
        let mut boxed: Box<dyn Consolidator> = Box::new(FreshBins { placement: Placement::new(2) });
        let a = boxed.place(Tenant::with_load(Load::new(0.4).unwrap())).unwrap();
        let b = boxed.place(Tenant::with_load(Load::new(0.6).unwrap())).unwrap();
        // A clone is an independent fork of the whole state.
        let mut fork = boxed.clone_box();
        fork.remove(a.tenant).unwrap();
        assert_eq!(fork.placement().tenant_count(), 1);
        assert_eq!(boxed.placement().tenant_count(), 2);
        // Removal through the box delegates and reports the freed replicas.
        let removed = boxed.remove(b.tenant).unwrap();
        assert_eq!(removed.bins, b.bins);
        assert!((removed.load - 0.6).abs() < 1e-12);
        assert!(matches!(boxed.remove(b.tenant), Err(crate::error::Error::UnknownTenant { .. })));
        // Recovery through the box re-homes the orphaned replica.
        let report = boxed.recover(&[a.bins[0]]).unwrap();
        assert_eq!(report.replicas_migrated, 1);
        assert!(boxed.placement().is_robust());
        assert_eq!(boxed.placement().level(a.bins[0]), 0.0);
    }

    #[test]
    fn update_load_through_trait_objects() {
        let mut boxed: Box<dyn Consolidator> = Box::new(FreshBins { placement: Placement::new(2) });
        let a = boxed.place(Tenant::with_load(Load::new(0.4).unwrap())).unwrap();
        let outcome = boxed.update_load(a.tenant, 0.6).unwrap();
        assert!((outcome.old_load - 0.4).abs() < 1e-12);
        assert!((outcome.new_load - 0.6).abs() < 1e-12);
        assert!((outcome.delta() - 0.2).abs() < 1e-12);
        assert_eq!(outcome.bins, a.bins);
        assert!((boxed.placement().level(a.bins[0]) - 0.3).abs() < 1e-12);
        // Typed validation propagates through the box.
        assert!(matches!(
            boxed.update_load(a.tenant, f64::NAN),
            Err(crate::error::Error::InvalidLoad { .. })
        ));
        assert!(matches!(
            boxed.update_load(TenantId::new(77), 0.5),
            Err(crate::error::Error::UnknownTenant { .. })
        ));
    }

    #[test]
    fn batch_defaults_match_sequential_loops() {
        let mut batched: Box<dyn Consolidator> =
            Box::new(FreshBins { placement: Placement::new(2) });
        let mut sequential = batched.clone_box();
        let tenants: Vec<Tenant> =
            [0.4, 0.2, 0.7].iter().map(|l| Tenant::with_load(Load::new(*l).unwrap())).collect();
        let batch = batched.place_batch(tenants.clone()).unwrap();
        let seq: Vec<PlacementOutcome> =
            tenants.into_iter().map(|t| sequential.place(t).unwrap()).collect();
        assert_eq!(batch, seq);
        let ids: Vec<TenantId> = batch.iter().map(|o| o.tenant).collect();
        let updates: Vec<(TenantId, f64)> = ids.iter().map(|id| (*id, 0.5)).collect();
        let batch_updates = batched.update_load_batch(&updates).unwrap();
        let seq_updates: Vec<LoadUpdateOutcome> =
            ids.iter().map(|id| sequential.update_load(*id, 0.5).unwrap()).collect();
        assert_eq!(batch_updates, seq_updates);
        let batch_removals = batched.remove_batch(&ids[..2]).unwrap();
        let seq_removals: Vec<RemovalOutcome> =
            ids[..2].iter().map(|id| sequential.remove(*id).unwrap()).collect();
        assert_eq!(batch_removals, seq_removals);
        assert_eq!(batched.placement().tenant_count(), 1);
    }

    #[test]
    fn batch_defaults_fail_fast_keeping_prior_ops() {
        let mut boxed: Box<dyn Consolidator> = Box::new(FreshBins { placement: Placement::new(2) });
        let a = Tenant::with_load(Load::new(0.4).unwrap());
        let b = Tenant::with_load(Load::new(0.2).unwrap());
        // Re-placing `a` mid-batch errors, but `a` and `b` placed before the
        // duplicate stay placed.
        let result = boxed.place_batch(vec![a.clone(), b, a]);
        assert!(matches!(result, Err(crate::error::Error::DuplicateTenant { .. })));
        assert_eq!(boxed.placement().tenant_count(), 2);
        assert!(matches!(
            boxed.remove_batch(&[a.id(), TenantId::new(9999)]),
            Err(crate::error::Error::UnknownTenant { .. })
        ));
        assert_eq!(boxed.placement().tenant_count(), 1);
    }

    #[test]
    fn migrate_through_trait_objects() {
        let mut boxed: Box<dyn Consolidator> = Box::new(FreshBins { placement: Placement::new(2) });
        let a = boxed.place(Tenant::with_load(Load::new(0.4).unwrap())).unwrap();
        let b = boxed.place(Tenant::with_load(Load::new(0.2).unwrap())).unwrap();
        boxed.migrate(a.tenant, a.bins[0], b.bins[0]).unwrap();
        assert_eq!(boxed.placement().level(a.bins[0]), 0.0);
        assert!((boxed.placement().level(b.bins[0]) - 0.3).abs() < 1e-12);
        // Endpoint misuse propagates as an error through the box.
        assert!(boxed.migrate(a.tenant, a.bins[0], b.bins[1]).is_err());
        // The inverse move restores the original placement.
        boxed.migrate(a.tenant, b.bins[0], a.bins[0]).unwrap();
        assert!((boxed.placement().level(a.bins[0]) - 0.2).abs() < 1e-12);
    }
}
