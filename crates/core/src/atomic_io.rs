//! Crash-safe file writes: temp file + `fsync` + atomic rename.
//!
//! Every artifact the workspace persists — reports, dumps, scenarios,
//! checkpoints — goes through [`write_atomic`] so a crash (or Ctrl-C)
//! mid-write never leaves a torn half-file at the destination path.
//! Readers either see the previous complete file or the new complete
//! file, never a prefix of one.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data lands in a uniquely
/// named sibling temp file first, is flushed to stable storage, and is
/// then renamed over the destination in one step.
///
/// The temp file lives in the destination's directory (renames across
/// filesystems are not atomic), named `.<file>.<pid>.tmp` so concurrent
/// writers in different processes never collide. On any failure the temp
/// file is removed; the destination is either untouched or fully
/// replaced.
///
/// # Errors
///
/// Propagates the underlying I/O error (annotated with the failing
/// path), leaving the destination unchanged.
pub fn write_atomic(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{} has no file name to replace", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{file_name}.{}.tmp", std::process::id()));

    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes.as_ref())?;
        // The rename below only orders the *directory entry*; the data
        // itself must be durable first or a crash can atomically install
        // an empty file.
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        // Persist the rename itself. Directory fsync is Unix-specific
        // (opening a directory for sync is not portable); elsewhere the
        // rename's atomicity is still what protects readers.
        #[cfg(unix)]
        {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();

    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cubefit-atomic-io-tests");
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let path = tmp_dir().join("replace.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer than the first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer than the first");
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = tmp_dir().join("no-temps");
        fs::create_dir_all(&dir).unwrap();
        write_atomic(dir.join("out.json"), b"{}").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away: {leftovers:?}");
    }

    #[test]
    fn failure_leaves_destination_untouched() {
        let path = tmp_dir().join("untouched.json");
        write_atomic(&path, b"original").unwrap();
        // Writing into a missing directory fails before the rename.
        let missing = tmp_dir().join("no-such-dir").join("out.json");
        assert!(write_atomic(&missing, b"x").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"original");
    }

    #[test]
    fn rejects_paths_without_a_file_name() {
        assert!(write_atomic(tmp_dir().join(".."), b"x").is_err());
    }
}
