//! Bins (servers) and read-only bin views.

use crate::class::ReplicaClass;
use crate::tenant::TenantId;
use std::fmt;

/// Opaque identifier of a bin (server) inside a [`crate::Placement`].
///
/// Ids are dense indices assigned in the order bins are opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BinId(pub(crate) usize);

impl BinId {
    /// Creates a bin id from a raw index.
    ///
    /// Mostly useful in tests; placements assign ids themselves.
    #[must_use]
    pub fn new(raw: usize) -> Self {
        BinId(raw)
    }

    /// Returns the raw index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bin#{}", self.0)
    }
}

/// The class of a bin, fixed when the first replica is placed in it
/// (paper §III). Classless bins belong to baseline algorithms that do not
/// partition servers into slots.
pub type BinClass = ReplicaClass;

/// Internal bin state tracked by [`crate::Placement`].
#[derive(Debug, Clone)]
pub(crate) struct BinData {
    /// CubeFit class, if the owning algorithm assigns one.
    pub class: Option<BinClass>,
    /// Total load of replicas currently hosted.
    pub level: f64,
    /// Hosted replicas as `(tenant, replica_load)` pairs.
    pub contents: Vec<(TenantId, f64)>,
}

impl BinData {
    pub(crate) fn new(class: Option<BinClass>) -> Self {
        BinData { class, level: 0.0, contents: Vec::new() }
    }
}

/// A read-only view of one bin's state.
///
/// Obtained from [`crate::Placement::bin`] / [`crate::Placement::bins`];
/// borrowing instead of copying keeps iteration over large placements cheap.
#[derive(Debug, Clone, Copy)]
pub struct BinSnapshot<'a> {
    pub(crate) id: BinId,
    pub(crate) data: &'a BinData,
}

impl<'a> BinSnapshot<'a> {
    /// The bin's identifier.
    #[must_use]
    pub fn id(&self) -> BinId {
        self.id
    }

    /// The bin's class, if the owning algorithm assigned one.
    #[must_use]
    pub fn class(&self) -> Option<BinClass> {
        self.data.class
    }

    /// Total load of replicas hosted by the bin.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.data.level
    }

    /// Remaining capacity (`1 − level`).
    #[must_use]
    pub fn free(&self) -> f64 {
        1.0 - self.data.level
    }

    /// Replicas hosted by the bin as `(tenant, replica_load)` pairs.
    #[must_use]
    pub fn contents(&self) -> &'a [(TenantId, f64)] {
        &self.data.contents
    }

    /// Number of replicas hosted.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.data.contents.len()
    }

    /// Whether the bin hosts no replicas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.contents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_id_roundtrip_and_display() {
        let id = BinId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "bin#7");
    }

    #[test]
    fn snapshot_exposes_state() {
        let mut data = BinData::new(Some(ReplicaClass::new(2)));
        data.level = 0.4;
        data.contents.push((TenantId::new(1), 0.4));
        let snap = BinSnapshot { id: BinId::new(0), data: &data };
        assert_eq!(snap.id().index(), 0);
        assert_eq!(snap.class(), Some(ReplicaClass::new(2)));
        assert!((snap.level() - 0.4).abs() < 1e-12);
        assert!((snap.free() - 0.6).abs() < 1e-12);
        assert_eq!(snap.replica_count(), 1);
        assert!(!snap.is_empty());
    }
}
