//! The *m-fit* predicate and stage-1 (mature-bin) placement.
//!
//! A mature bin `B` **m-fits** a replica `r` if `B` has room for `r` and,
//! after placing `r`, the empty space of `B` is at least the total size of
//! replicas shared between `B` and any set of `γ − 1` bins (paper §III).
//! Stage 1 of CubeFit places a tenant's replicas into mature bins by Best
//! Fit when *all* `γ` replicas m-fit; otherwise the tenant falls through
//! to stage 2. Best Fit here selects the *tightest* robustly fitting bin —
//! the bin whose remaining robust slack exceeds the replica by the least —
//! which coincides with the paper's highest-level rule among bins of equal
//! reserve and scales to data-center bin counts (see [`MatureSet`]).

use crate::bin::BinId;
use crate::class::ReplicaClass;
use crate::config::Stage1Eligibility;
use crate::placement::Placement;
use crate::smallbuf::SmallBuf;
use crate::EPSILON;
use std::collections::BTreeSet;

/// Whether `bin` m-fits a replica of size `size`, assuming the tenant's
/// other replicas are (tentatively) placed on `siblings`.
///
/// `siblings` affects the check because placing the tenant increases the
/// shared load between `bin` and each sibling by `size`.
///
/// ```
/// use cubefit_core::{mfit, Load, Placement, Tenant, TenantId};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let mut p = Placement::new(2);
/// let (s1, s2) = (p.open_bin(None), p.open_bin(None));
/// p.place_tenant(&Tenant::new(TenantId::new(0), Load::new(0.7)?), &[s1, s2])?;
/// // s1 is at level 0.35 sharing 0.35 with s2: a 0.3 replica still fits
/// // (0.35+0.3+0.35 ≤ 1) but a 0.31 replica does not.
/// assert!(mfit::m_fits(&p, s1, 0.3, &[]));
/// assert!(!mfit::m_fits(&p, s1, 0.31, &[]));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn m_fits(placement: &Placement, bin: BinId, size: f64, siblings: &[BinId]) -> bool {
    m_fits_with_growth(placement, bin, size, siblings, &[], 0.0)
}

/// [`m_fits`] with pending-growth accounting.
///
/// The active multi-replica (see [`crate::multireplica`]) keeps growing on
/// its `γ` host bins after they mature, by up to `headroom` (its cap minus
/// its current size). A guest admitted now must still fit once that growth
/// materializes, so the check treats each host in `growth_hosts` as if its
/// level — and its shared load with the other hosts — were already
/// `headroom` higher.
#[must_use]
pub fn m_fits_with_growth(
    placement: &Placement,
    bin: BinId,
    size: f64,
    siblings: &[BinId],
    growth_hosts: &[BinId],
    headroom: f64,
) -> bool {
    let is_host = growth_hosts.contains(&bin);
    let level = placement.level(bin) + if is_host { headroom } else { 0.0 };
    if level + size > 1.0 + EPSILON {
        return false;
    }
    // Inline-first adjustments: this is the hot path of every stage-1 scan
    // and γ is tiny for the paper's configurations, but the buffer spills
    // to the heap for large γ — truncating entries here silently shrinks
    // the failover reserve and admits non-robust placements.
    let mut adjustments: SmallBuf<(BinId, f64), 8> = SmallBuf::new((BinId::new(0), 0.0));
    for &sibling in siblings {
        adjustments.push((sibling, size));
    }
    if is_host {
        for &host in growth_hosts {
            if host != bin {
                adjustments.push((host, headroom));
            }
        }
    }
    let failover = placement.worst_failover_with(bin, adjustments.as_slice());
    level + size + failover <= 1.0 + EPSILON
}

/// The set of mature bins, keyed by their **robust slack**
/// `max(0, 1 − level − worst_failover)` — the largest guest replica the bin
/// could accept without violating its reserve (ignoring the guest's own
/// sibling contribution, which the m-fit check adds per candidate).
///
/// Scanning bins with `slack ≥ size` in ascending order yields tightest
/// feasible fits first — the Best-Fit criterion generalized to
/// reserve-gated feasibility — and never wastes the scan budget on
/// saturated bins, which a plain level ordering does once thousands of
/// full-but-reserved bins pile up at the top.
#[derive(Debug, Clone, Default)]
pub(crate) struct MatureSet {
    /// `(slack_bits, bin)` — slacks are clamped non-negative so the
    /// IEEE-754 bit pattern orders identically to the float value.
    by_slack: BTreeSet<(u64, BinId)>,
    slack_of: std::collections::HashMap<BinId, f64>,
}

impl MatureSet {
    fn key(slack: f64) -> u64 {
        slack.max(0.0).to_bits()
    }

    /// Adds `bin` with the given robust slack.
    pub(crate) fn insert(&mut self, bin: BinId, slack: f64) {
        let clamped = slack.max(0.0);
        self.by_slack.insert((Self::key(clamped), bin));
        self.slack_of.insert(bin, clamped);
    }

    /// Re-keys `bin` after its slack changed; no-op for untracked bins.
    pub(crate) fn update_slack(&mut self, bin: BinId, new_slack: f64) {
        if let Some(old) = self.slack_of.get(&bin).copied() {
            self.by_slack.remove(&(Self::key(old), bin));
            self.insert(bin, new_slack);
        }
    }

    pub(crate) fn contains(&self, bin: BinId) -> bool {
        self.slack_of.contains_key(&bin)
    }

    pub(crate) fn len(&self) -> usize {
        self.by_slack.len()
    }

    /// Bins with slack at least `min_slack`, tightest first.
    pub(crate) fn iter_fitting(&self, min_slack: f64) -> impl Iterator<Item = BinId> + '_ {
        self.by_slack.range((Self::key(min_slack), BinId::new(0))..).map(|&(_, bin)| bin)
    }
}

/// What a stage-1 attempt did: the chosen bins (if any) and how much scan
/// work it cost, for decision tracing.
#[derive(Debug, Clone, Default)]
pub(crate) struct Stage1Scan {
    /// The chosen bins (one per replica, distinct, tightest-fit order) if
    /// every replica m-fit; `None` to fall through to stage 2.
    pub bins: Option<Vec<BinId>>,
    /// Mature candidate bins examined before the scan stopped.
    pub scanned: usize,
}

/// Attempts stage 1 for a tenant whose `γ` replicas each have size `size`
/// and class `class`.
///
/// Does not mutate the placement; the caller commits the assignment.
// Nine orthogonal knobs, all flowing straight from `CubeFit`'s config; a
// one-use parameter struct would only rename them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_stage1(
    placement: &Placement,
    mature: &MatureSet,
    eligibility: Stage1Eligibility,
    class: ReplicaClass,
    size: f64,
    gamma: usize,
    growth_hosts: &[BinId],
    headroom: f64,
    scan_limit: usize,
) -> Stage1Scan {
    let mut scanned = 0usize;
    let mut chosen: Vec<BinId> = Vec::with_capacity(gamma);
    for _ in 0..gamma {
        let candidate = mature.iter_fitting(size).take(scan_limit).find(|&bin| {
            scanned += 1;
            if chosen.contains(&bin) {
                return false;
            }
            if !eligible(placement, bin, class, eligibility) {
                return false;
            }
            m_fits_with_growth(placement, bin, size, &chosen, growth_hosts, headroom)
        });
        match candidate {
            Some(bin) => chosen.push(bin),
            None => return Stage1Scan { bins: None, scanned },
        }
    }
    // Re-validate every chosen bin against the *complete* sibling set:
    // later choices increase the shared load of earlier ones, which the
    // per-replica scan could not yet see.
    for (i, &bin) in chosen.iter().enumerate() {
        let siblings: Vec<BinId> =
            chosen.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &b)| b).collect();
        if !m_fits_with_growth(placement, bin, size, &siblings, growth_hosts, headroom) {
            return Stage1Scan { bins: None, scanned };
        }
    }
    Stage1Scan { bins: Some(chosen), scanned }
}

fn eligible(
    placement: &Placement,
    bin: BinId,
    class: ReplicaClass,
    eligibility: Stage1Eligibility,
) -> bool {
    match eligibility {
        Stage1Eligibility::AnyMatureBin => true,
        Stage1Eligibility::SmallerClassBins => {
            placement.bin(bin).class().is_some_and(|bin_class| bin_class < class)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;
    use crate::tenant::{Tenant, TenantId};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    /// Two mature class-1 bins each holding one 0.35 replica of the same
    /// tenant (γ=2), mirroring a post-stage-2 state.
    fn mature_pair() -> (Placement, MatureSet, Vec<BinId>) {
        let mut p = Placement::new(2);
        let b1 = p.open_bin(Some(ReplicaClass::new(1)));
        let b2 = p.open_bin(Some(ReplicaClass::new(1)));
        p.place_tenant(&tenant(0, 0.7), &[b1, b2]).unwrap();
        let mut mature = MatureSet::default();
        mature.insert(b1, 1.0 - p.level(b1) - p.worst_failover(b1));
        mature.insert(b2, 1.0 - p.level(b2) - p.worst_failover(b2));
        (p, mature, vec![b1, b2])
    }

    #[test]
    fn m_fit_respects_shared_reserve() {
        let (p, _, b) = mature_pair();
        // level 0.35, shared 0.35 with peer: slack for m-fit is 0.3.
        assert!(m_fits(&p, b[0], 0.3, &[]));
        assert!(!m_fits(&p, b[0], 0.31, &[]));
    }

    #[test]
    fn m_fit_accounts_for_tentative_siblings() {
        let (p, _, b) = mature_pair();
        // Placing both replicas of a 0.4 tenant (replicas 0.2) on b1, b2
        // raises their mutual share to 0.55; 0.35+0.2+0.55 > 1.
        assert!(m_fits(&p, b[0], 0.2, &[]));
        assert!(!m_fits(&p, b[1], 0.2, &[b[0]]));
        // A smaller tenant works: replicas 0.1, share 0.45, total 0.9.
        assert!(m_fits(&p, b[1], 0.1, &[b[0]]));
    }

    #[test]
    fn m_fit_rejects_plain_overflow() {
        let (p, _, b) = mature_pair();
        assert!(!m_fits(&p, b[0], 0.7, &[]));
    }

    #[test]
    fn stage1_places_pair_on_distinct_bins() {
        let (p, mature, b) = mature_pair();
        let chosen = try_stage1(
            &p,
            &mature,
            Stage1Eligibility::AnyMatureBin,
            ReplicaClass::new(5),
            0.1,
            2,
            &[],
            0.0,
            usize::MAX,
        )
        .bins
        .expect("0.1 replicas m-fit");
        assert_eq!(chosen.len(), 2);
        assert_ne!(chosen[0], chosen[1]);
        assert!(b.contains(&chosen[0]) && b.contains(&chosen[1]));
    }

    #[test]
    fn stage1_full_sibling_revalidation_rejects() {
        let (p, mature, _) = mature_pair();
        // 0.2 replicas pass the sequential scan for the first bin but the
        // pair violates the mutual-share reserve (caught by either the
        // sibling-aware scan or the final re-validation).
        assert!(try_stage1(
            &p,
            &mature,
            Stage1Eligibility::AnyMatureBin,
            ReplicaClass::new(3),
            0.2,
            2,
            &[],
            0.0,
            usize::MAX,
        )
        .bins
        .is_none());
    }

    #[test]
    fn stage1_respects_class_eligibility() {
        let (p, mature, _) = mature_pair();
        // Bins are class 1; a class-1 replica is not "smaller".
        assert!(try_stage1(
            &p,
            &mature,
            Stage1Eligibility::SmallerClassBins,
            ReplicaClass::new(1),
            0.1,
            2,
            &[],
            0.0,
            usize::MAX,
        )
        .bins
        .is_none());
        assert!(try_stage1(
            &p,
            &mature,
            Stage1Eligibility::SmallerClassBins,
            ReplicaClass::new(2),
            0.1,
            2,
            &[],
            0.0,
            usize::MAX,
        )
        .bins
        .is_some());
    }

    #[test]
    fn stage1_prefers_higher_level_bins() {
        // Fig. 2 scenario: four mature class-1 bins, two fuller than the
        // others; Best Fit picks the fuller pair.
        let mut p = Placement::new(2);
        let bins: Vec<BinId> = (0..4).map(|_| p.open_bin(Some(ReplicaClass::new(1)))).collect();
        p.place_tenant(&tenant(0, 0.70), &[bins[0], bins[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.72), &[bins[2], bins[3]]).unwrap();
        let mut mature = MatureSet::default();
        for &b in &bins {
            mature.insert(b, 1.0 - p.level(b) - p.worst_failover(b));
        }
        let chosen = try_stage1(
            &p,
            &mature,
            Stage1Eligibility::AnyMatureBin,
            ReplicaClass::new(8),
            0.05,
            2,
            &[],
            0.0,
            usize::MAX,
        )
        .bins
        .unwrap();
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![bins[2], bins[3]]);
    }

    #[test]
    fn mature_set_orders_by_slack_and_updates() {
        let mut mature = MatureSet::default();
        let (a, b) = (BinId::new(0), BinId::new(1));
        mature.insert(a, 0.5);
        mature.insert(b, 0.4);
        // Tightest (smallest slack ≥ request) first.
        assert_eq!(mature.iter_fitting(0.1).next(), Some(b));
        // Requests above a bin's slack skip it.
        assert_eq!(mature.iter_fitting(0.45).next(), Some(a));
        assert!(mature.iter_fitting(0.6).next().is_none());
        mature.update_slack(b, 0.7);
        assert_eq!(mature.iter_fitting(0.6).next(), Some(b));
        assert!(mature.contains(a));
        assert_eq!(mature.len(), 2);
        // Negative slacks clamp to zero and drop out of positive queries.
        mature.update_slack(a, -0.2);
        assert!(mature.iter_fitting(0.01).next() != Some(a));
        // Updating an untracked bin is a no-op.
        mature.update_slack(BinId::new(9), 0.3);
        assert_eq!(mature.len(), 2);
    }

    #[test]
    fn growth_headroom_blocks_otherwise_fitting_guest() {
        let (p, _, b) = mature_pair();
        // Without growth a 0.25 replica fails anyway; a 0.2 replica passes
        // on b1 alone but must fail once b1 can still grow by 0.15 (raising
        // both its level and its share with b2).
        assert!(m_fits_with_growth(&p, b[0], 0.2, &[], &[], 0.0));
        assert!(!m_fits_with_growth(&p, b[0], 0.2, &[], &[b[0], b[1]], 0.15));
        // A bin that is not a growth host is unaffected.
        assert!(m_fits_with_growth(&p, b[0], 0.2, &[], &[b[1]], 0.15));
    }

    #[test]
    fn m_fit_keeps_all_siblings_at_large_gamma() {
        // Regression for the 8-entry adjustment truncation: at γ = 12 a
        // full sibling set has 11 entries. A tenant of load 0.4 occupies
        // all 12 bins (replica 1/30 each, every pair sharing 1/30); adding
        // a guest of replica size s to all of them makes every bin's true
        // worst case 12·(0.4/12 + s) = 0.4 + 12s. With s = 0.06 that is
        // 1.12 > 1, but counting only 8 of the 11 siblings gives
        // 0.4 + 9·0.06 = 0.94 ≤ 1 — a silent robustness violation.
        let gamma = 12;
        let mut p = Placement::new(gamma);
        let bins: Vec<BinId> = (0..gamma).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.4), &bins).unwrap();
        assert!(!m_fits(&p, bins[0], 0.06, &bins[1..]), "truncated reserve admitted an overload");
        // A guest that genuinely fits is still admitted: 0.4 + 12s ≤ 1
        // for s = 0.05.
        assert!(m_fits(&p, bins[0], 0.05, &bins[1..]));
    }

    #[test]
    fn growth_adjustments_survive_large_sibling_sets() {
        // Siblings plus growth hosts past the inline capacity must all be
        // counted. γ = 10: 6 siblings + 9 growth-host adjustments = 15.
        let gamma = 10;
        let mut p = Placement::new(gamma);
        let bins: Vec<BinId> = (0..gamma).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.3), &bins).unwrap();
        // All bins are growth hosts with headroom h: the target's level and
        // its shares with the other 9 hosts rise by h; 6 siblings add s.
        // Worst case on bins[0] with s = 0.04, h = 0.03:
        //   level 0.03 + h + s
        //   + 6·(0.03 + s + h)  (sibling hosts)
        //   + 3·(0.03 + h)     (remaining hosts)
        // = 0.3 + 10h + 7s = 0.88 ≤ 1, so it fits — but only barely:
        // s = 0.06 gives 1.02 and must be rejected even though dropping
        // the adjustments past entry 8 would accept it.
        let siblings = &bins[1..7];
        assert!(m_fits_with_growth(&p, bins[0], 0.04, siblings, &bins, 0.03));
        assert!(!m_fits_with_growth(&p, bins[0], 0.06, siblings, &bins, 0.03));
    }

    #[test]
    fn stage1_fails_with_no_mature_bins() {
        let p = Placement::new(2);
        let mature = MatureSet::default();
        assert!(try_stage1(
            &p,
            &mature,
            Stage1Eligibility::AnyMatureBin,
            ReplicaClass::new(2),
            0.1,
            2,
            &[],
            0.0,
            usize::MAX,
        )
        .bins
        .is_none());
    }
}
