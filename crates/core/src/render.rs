//! Human-readable placement rendering.
//!
//! Debugging a packing is much easier when you can *see* it. This module
//! renders a [`Placement`] as fixed-width text: one bar per server showing
//! its fill level, class, failover reserve, and hosted tenants.

use crate::placement::Placement;
use std::fmt::Write as _;

/// Width of the fill bar in characters.
const BAR_WIDTH: usize = 40;

/// Options for [`render`].
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Maximum number of servers to show (`usize::MAX` for all).
    pub max_servers: usize,
    /// Whether to list each server's tenants under its bar.
    pub show_tenants: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { max_servers: 24, show_tenants: false }
    }
}

/// Renders `placement` as a fixed-width text diagram.
///
/// Each server line shows `[####reserve....]`: `#` is placed load, `~` the
/// worst-case failover reserve the server must absorb, and `.` genuinely
/// free space.
///
/// ```
/// use cubefit_core::{render, Load, Placement, Tenant, TenantId};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let mut p = Placement::new(2);
/// let (a, b) = (p.open_bin(None), p.open_bin(None));
/// p.place_tenant(&Tenant::new(TenantId::new(0), Load::new(0.6)?), &[a, b])?;
/// let text = render::render(&p, render::RenderOptions::default());
/// assert!(text.contains("server"));
/// assert!(text.contains('#'));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render(placement: &Placement, options: RenderOptions) -> String {
    let mut out = String::new();
    let stats = placement.stats();
    let _ = writeln!(
        out,
        "{} tenants on {} servers (γ={}, utilization {:.1}%)",
        stats.tenants,
        stats.open_bins,
        placement.gamma(),
        stats.mean_utilization * 100.0
    );
    for (shown, bin) in placement.bins().filter(|b| !b.is_empty()).enumerate() {
        if shown >= options.max_servers {
            let _ = writeln!(out, "… {} more servers", stats.open_bins - shown);
            break;
        }
        let level = bin.level();
        let reserve = placement.worst_failover(bin.id()).min(1.0 - level);
        let filled = (level * BAR_WIDTH as f64).round() as usize;
        let reserved = (reserve * BAR_WIDTH as f64).round() as usize;
        let filled = filled.min(BAR_WIDTH);
        let reserved = reserved.min(BAR_WIDTH - filled);
        let free = BAR_WIDTH - filled - reserved;
        let class = bin.class().map_or_else(|| "  -   ".to_string(), |c| format!("{c:<6}"));
        let _ = writeln!(
            out,
            "server {:>4} {class} [{}{}{}] level {:.3} reserve {:.3}",
            bin.id().index(),
            "#".repeat(filled),
            "~".repeat(reserved),
            ".".repeat(free),
            level,
            reserve,
        );
        if options.show_tenants {
            let tenants: Vec<String> =
                bin.contents().iter().map(|(t, load)| format!("{t}:{load:.3}")).collect();
            let _ = writeln!(out, "            {}", tenants.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Consolidator;
    use crate::config::CubeFitConfig;
    use crate::cubefit::CubeFit;
    use crate::load::Load;
    use crate::tenant::{Tenant, TenantId};

    fn sample() -> Placement {
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap());
        for (id, load) in [(0u64, 0.6), (1, 0.3), (2, 0.78), (3, 0.12)] {
            cf.place(Tenant::new(TenantId::new(id), Load::new(load).unwrap())).unwrap();
        }
        cf.placement().clone()
    }

    #[test]
    fn renders_every_used_server() {
        let p = sample();
        let text = render(&p, RenderOptions { max_servers: usize::MAX, show_tenants: false });
        for bin in p.bins().filter(|b| !b.is_empty()) {
            assert!(text.contains(&format!("server {:>4}", bin.id().index())));
        }
        assert!(text.contains("utilization"));
    }

    #[test]
    fn bars_are_fixed_width() {
        let p = sample();
        let text = render(&p, RenderOptions::default());
        for line in text.lines().filter(|l| l.contains('[')) {
            let open = line.find('[').unwrap();
            let close = line.find(']').unwrap();
            assert_eq!(close - open - 1, BAR_WIDTH, "line: {line}");
        }
    }

    #[test]
    fn truncates_to_max_servers() {
        let p = sample();
        let text = render(&p, RenderOptions { max_servers: 1, show_tenants: false });
        assert!(text.contains("more servers"));
        assert_eq!(text.lines().filter(|l| l.contains('[')).count(), 1);
    }

    #[test]
    fn tenant_listing_is_optional() {
        let p = sample();
        let with = render(&p, RenderOptions { max_servers: 10, show_tenants: true });
        let without = render(&p, RenderOptions { max_servers: 10, show_tenants: false });
        assert!(with.contains("tenant#0"));
        assert!(!without.contains("tenant#0"));
    }

    #[test]
    fn empty_placement_renders_header_only() {
        let p = Placement::new(2);
        let text = render(&p, RenderOptions::default());
        assert!(text.contains("0 tenants on 0 servers"));
        assert_eq!(text.lines().count(), 1);
    }
}
