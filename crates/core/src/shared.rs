//! Incremental shared-load bookkeeping.
//!
//! For robustness checks, every algorithm needs the quantity
//! `|Sᵢ ∩ Sⱼ|` — the total load, on bin `Sᵢ`, of replicas whose tenant also
//! has a replica on bin `Sⱼ` (paper §II). Because replica loads within a
//! tenant are equal, the matrix is symmetric. [`SharedIndex`] answers "sum
//! of the `γ−1` largest shared loads" — the failover reserve a bin must
//! keep — in `O(1)` via a per-bin top-`k` cache. Placements grow an entry
//! in `O(k)` ([`SharedIndex::add`]); tenant departures and replica
//! migrations shrink entries ([`SharedIndex::sub`]), which rebuilds the two
//! affected caches from their full matrix rows — churn is rare relative to
//! the reserve queries issued on every placement scan, so the asymmetric
//! cost lands on the right side.

use crate::bin::BinId;
use crate::smallbuf::SmallBuf;
use std::collections::{HashMap, HashSet};

/// Per-bin cache of the `k` largest shared-load entries.
#[derive(Debug, Clone, Default)]
struct TopK {
    /// `(load, peer)` pairs sorted descending by load; length ≤ k.
    entries: Vec<(f64, BinId)>,
}

impl TopK {
    /// Records that the shared load with `peer` is now `value`
    /// (monotonically non-decreasing updates only).
    ///
    /// Maintains the descending-order invariant with at most one bubble
    /// pass: updates only grow an entry, so the touched entry can only move
    /// toward the front, and the minimum is always the last entry.
    fn update(&mut self, k: usize, peer: BinId, value: f64) {
        debug_assert!(k >= 1, "γ ≥ 2 implies a non-empty top cache");
        let pos = if let Some(i) = self.entries.iter().position(|(_, p)| *p == peer) {
            self.entries[i].0 = value;
            i
        } else if self.entries.len() < k {
            self.entries.push((value, peer));
            self.entries.len() - 1
        } else {
            // Entries only grow, so every non-cached entry is ≤ the cached
            // minimum (the last entry); replacing it preserves the top-k
            // invariant.
            let last = self.entries.len() - 1;
            if value <= self.entries[last].0 {
                return;
            }
            self.entries[last] = (value, peer);
            last
        };
        let mut i = pos;
        while i > 0 && self.entries[i - 1].0 < self.entries[i].0 {
            self.entries.swap(i - 1, i);
            i -= 1;
        }
        debug_assert!(
            self.entries.windows(2).all(|w| w[0].0 >= w[1].0),
            "top cache must stay sorted descending"
        );
    }

    /// Rebuilds the cache from a bin's full matrix row after a decrement.
    ///
    /// A shrinking entry can fall out of the top `k` and let a previously
    /// uncached peer in, which the bubble maintenance of [`TopK::update`]
    /// cannot discover; a full re-sort of the row is the only sound answer.
    fn rebuild<'a>(&mut self, k: usize, row: impl Iterator<Item = (&'a BinId, &'a f64)>) {
        self.entries.clear();
        self.entries.extend(row.map(|(p, v)| (*v, *p)));
        self.entries.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        self.entries.truncate(k);
    }

    fn sum(&self) -> f64 {
        self.entries.iter().map(|(v, _)| v).sum()
    }
}

/// Symmetric shared-load matrix with `O(1)` worst-failover queries.
#[derive(Debug, Clone, Default)]
pub(crate) struct SharedIndex {
    /// `γ − 1`: how many simultaneous peer failures a bin must absorb.
    k: usize,
    /// `map[i][j] = |Sᵢ ∩ Sⱼ|` (stored for both orders).
    map: Vec<HashMap<BinId, f64>>,
    tops: Vec<TopK>,
    /// When `Some`, top-cache maintenance is deferred: rows touched by
    /// [`Self::add`]/[`Self::sub`] are recorded here and rebuilt once by
    /// [`Self::end_deferred`]. Reserve queries are invalid while active
    /// (debug builds assert). See [`crate::backend`].
    deferred_dirty: Option<HashSet<usize>>,
}

impl SharedIndex {
    pub(crate) fn new(gamma: usize) -> Self {
        SharedIndex { k: gamma - 1, map: Vec::new(), tops: Vec::new(), deferred_dirty: None }
    }

    /// Enters deferred-maintenance mode: subsequent mutations update the
    /// matrix only, and the touched rows' top caches are rebuilt in one
    /// pass by [`Self::end_deferred`]. Reserve queries must not be issued
    /// until then. Calling twice is a no-op (the dirty set is kept).
    pub(crate) fn begin_deferred(&mut self) {
        if self.deferred_dirty.is_none() {
            self.deferred_dirty = Some(HashSet::new());
        }
    }

    /// Leaves deferred-maintenance mode, rebuilding each dirty row's top
    /// cache from its matrix row exactly once. Safe to call when the mode
    /// was never entered.
    pub(crate) fn end_deferred(&mut self) {
        if let Some(dirty) = self.deferred_dirty.take() {
            for row in dirty {
                let (map_row, tops) = (&self.map[row], &mut self.tops[row]);
                tops.rebuild(self.k, map_row.iter());
            }
        }
    }

    /// Registers a newly opened bin.
    pub(crate) fn push_bin(&mut self) {
        self.map.push(HashMap::new());
        self.tops.push(TopK::default());
    }

    /// Number of bins tracked.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Adds `delta` to the shared load between `a` and `b` (both orders).
    pub(crate) fn add(&mut self, a: BinId, b: BinId, delta: f64) {
        debug_assert_ne!(a, b, "a bin does not share load with itself");
        for (x, y) in [(a, b), (b, a)] {
            let entry = self.map[x.0].entry(y).or_insert(0.0);
            *entry += delta;
            let value = *entry;
            if let Some(dirty) = self.deferred_dirty.as_mut() {
                dirty.insert(x.0);
            } else {
                self.tops[x.0].update(self.k, y, value);
            }
        }
    }

    /// Subtracts `delta` from the shared load between `a` and `b` (both
    /// orders), rebuilding the two affected top caches.
    ///
    /// Entries that reach zero (within float drift) are dropped from the
    /// matrix so churned-out peers do not accumulate as dead weight.
    pub(crate) fn sub(&mut self, a: BinId, b: BinId, delta: f64) {
        debug_assert_ne!(a, b, "a bin does not share load with itself");
        for (x, y) in [(a, b), (b, a)] {
            let entry = self.map[x.0].entry(y).or_insert(0.0);
            *entry -= delta;
            debug_assert!(
                *entry > -1e-9,
                "shared load {x}↔{y} went negative ({}): decrement exceeds recorded share",
                *entry
            );
            if *entry <= 1e-12 {
                self.map[x.0].remove(&y);
            }
            if let Some(dirty) = self.deferred_dirty.as_mut() {
                dirty.insert(x.0);
            } else {
                let (row, tops) = (&self.map[x.0], &mut self.tops[x.0]);
                tops.rebuild(self.k, row.iter());
            }
        }
    }

    /// Shared load `|a ∩ b|`.
    pub(crate) fn get(&self, a: BinId, b: BinId) -> f64 {
        self.map[a.0].get(&b).copied().unwrap_or(0.0)
    }

    /// Sum of the `γ − 1` largest shared loads of `bin`: the worst-case
    /// extra load redirected to `bin` by any `γ − 1` simultaneous failures.
    pub(crate) fn worst_failover(&self, bin: BinId) -> f64 {
        debug_assert!(
            self.deferred_dirty.as_ref().is_none_or(|dirty| !dirty.contains(&bin.0)),
            "reserve query on a dirty row in deferred-maintenance mode"
        );
        self.tops[bin.0].sum()
    }

    /// Sum of the `k` largest shared loads of `bin` (`k ≤ γ − 1`), as if the
    /// shared loads with each peer in `adjustments` had already been
    /// increased by the given deltas.
    ///
    /// `k = γ − 1` is the robustness reserve; `k = 1` is the single-failure
    /// reserve used by the RFI baseline.
    pub(crate) fn top_shared_sum_with(
        &self,
        bin: BinId,
        adjustments: &[(BinId, f64)],
        k: usize,
    ) -> f64 {
        debug_assert!(k <= self.k, "top cache only holds γ−1 entries");
        debug_assert!(
            self.deferred_dirty.as_ref().is_none_or(|dirty| !dirty.contains(&bin.0)),
            "reserve query on a dirty row in deferred-maintenance mode"
        );
        let top = &self.tops[bin.0].entries;
        // Fast path: no adjustments — the cache already holds the answer.
        if adjustments.is_empty() {
            return top.iter().take(k).map(|(v, _)| v).sum();
        }
        // Candidate set: cached top entries plus every adjusted peer; any
        // other peer is ≤ the cached minimum and unadjusted, so it cannot
        // enter the adjusted top-k. The buffer holds *every* candidate —
        // up to γ−1 cached entries plus one per adjustment — staying on the
        // stack for the paper's small γ and spilling to the heap when γ
        // outgrows the inline capacity (γ is unbounded; see DESIGN.md §9).
        let mut candidates: SmallBuf<(f64, BinId), 16> = SmallBuf::new((0.0, BinId(usize::MAX)));
        for &(v, p) in top {
            let adj: f64 = adjustments.iter().filter(|(b, _)| *b == p).map(|(_, d)| d).sum();
            candidates.push((v + adj, p));
        }
        for (i, &(p, _)) in adjustments.iter().enumerate() {
            // Aggregate every delta targeting the same peer (a sibling
            // adjustment and a growth-headroom adjustment can name the
            // same bin) and emit one candidate per peer.
            if p == bin
                || top.iter().any(|(_, q)| *q == p)
                || adjustments[..i].iter().any(|(q, _)| *q == p)
            {
                continue;
            }
            let total: f64 = adjustments.iter().filter(|(q, _)| *q == p).map(|(_, d)| d).sum();
            candidates.push((self.get(bin, p) + total, p));
        }
        let slice = candidates.as_mut_slice();
        slice.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        slice.iter().take(k).map(|(v, _)| v).sum()
    }

    /// Like [`Self::worst_failover`], but as if the shared loads of `bin`
    /// with each peer in `adjustments` had already been increased by the
    /// given deltas — an alias for [`Self::top_shared_sum_with`] at
    /// `k = γ − 1`, kept for the adjusted-reserve tests below.
    #[cfg(test)]
    pub(crate) fn worst_failover_with(&self, bin: BinId, adjustments: &[(BinId, f64)]) -> f64 {
        self.top_shared_sum_with(bin, adjustments, self.k)
    }

    /// Total shared load between `bin` and a specific set of failed peers
    /// (the conservative failover estimate of paper §II).
    pub(crate) fn failover_from(&self, bin: BinId, failed: &[BinId]) -> f64 {
        failed.iter().filter(|f| **f != bin).map(|f| self.get(bin, *f)).sum()
    }

    /// Iterates over `(peer, shared_load)` entries of `bin`.
    pub(crate) fn peers(&self, bin: BinId) -> impl Iterator<Item = (BinId, f64)> + '_ {
        self.map[bin.0].iter().map(|(b, v)| (*b, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(i: usize) -> BinId {
        BinId::new(i)
    }

    fn index_with_bins(gamma: usize, bins: usize) -> SharedIndex {
        let mut idx = SharedIndex::new(gamma);
        for _ in 0..bins {
            idx.push_bin();
        }
        idx
    }

    #[test]
    fn add_is_symmetric() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.3);
        assert_eq!(idx.get(bid(0), bid(1)), 0.3);
        assert_eq!(idx.get(bid(1), bid(0)), 0.3);
        assert_eq!(idx.get(bid(0), bid(2)), 0.0);
    }

    #[test]
    fn worst_failover_gamma2_takes_max() {
        let mut idx = index_with_bins(2, 4);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.5);
        idx.add(bid(0), bid(3), 0.1);
        assert!((idx.worst_failover(bid(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_failover_gamma3_takes_top_two() {
        let mut idx = index_with_bins(3, 4);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.5);
        idx.add(bid(0), bid(3), 0.3);
        assert!((idx.worst_failover(bid(0)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn increments_accumulate_in_top_cache() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.1);
        idx.add(bid(0), bid(2), 0.15);
        // Bump bin 1 past bin 2 through repeated increments.
        idx.add(bid(0), bid(1), 0.1);
        assert!((idx.worst_failover(bid(0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sub_is_symmetric_and_drops_spent_entries() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.3);
        idx.sub(bid(0), bid(1), 0.1);
        assert!((idx.get(bid(0), bid(1)) - 0.2).abs() < 1e-12);
        assert!((idx.get(bid(1), bid(0)) - 0.2).abs() < 1e-12);
        idx.sub(bid(1), bid(0), 0.2);
        assert_eq!(idx.get(bid(0), bid(1)), 0.0);
        assert_eq!(idx.worst_failover(bid(0)), 0.0);
        assert_eq!(idx.peers(bid(0)).count(), 0, "spent entries must leave the matrix");
    }

    #[test]
    fn deferred_mode_rebuilds_dirty_rows_once_at_end() {
        let mut eager = index_with_bins(3, 5);
        let mut deferred = index_with_bins(3, 5);
        for idx in [&mut eager, &mut deferred] {
            idx.add(bid(0), bid(1), 0.4);
            idx.add(bid(0), bid(2), 0.3);
            idx.add(bid(1), bid(3), 0.2);
        }
        deferred.begin_deferred();
        deferred.sub(bid(0), bid(1), 0.4);
        deferred.add(bid(0), bid(4), 0.35);
        deferred.sub(bid(0), bid(2), 0.15);
        deferred.end_deferred();
        eager.sub(bid(0), bid(1), 0.4);
        eager.add(bid(0), bid(4), 0.35);
        eager.sub(bid(0), bid(2), 0.15);
        for i in 0..5 {
            assert!(
                (eager.worst_failover(bid(i)) - deferred.worst_failover(bid(i))).abs() < 1e-12,
                "bin {i}: deferred maintenance must converge to the eager state"
            );
        }
        // end_deferred without begin_deferred is a no-op.
        eager.end_deferred();
        assert!((eager.worst_failover(bid(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sub_promotes_previously_uncached_peer() {
        // γ = 2 caches a single entry; shrinking it below an uncached peer
        // must surface that peer — impossible without the row rebuild.
        let mut idx = index_with_bins(2, 4);
        idx.add(bid(0), bid(1), 0.5);
        idx.add(bid(0), bid(2), 0.4);
        idx.add(bid(0), bid(3), 0.3);
        assert!((idx.worst_failover(bid(0)) - 0.5).abs() < 1e-12);
        idx.sub(bid(0), bid(1), 0.5);
        assert!((idx.worst_failover(bid(0)) - 0.4).abs() < 1e-12);
        idx.sub(bid(0), bid(2), 0.2);
        assert!((idx.worst_failover(bid(0)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn interleaved_add_sub_matches_exhaustive_scan() {
        // Randomized churn cross-check: adds and bounded subs against a
        // dense truth matrix, for both a small and a large top cache.
        for (gamma, bins) in [(3usize, 8usize), (14, 16)] {
            let k = gamma - 1;
            let mut idx = index_with_bins(gamma, bins);
            let mut truth = vec![vec![0.0f64; bins]; bins];
            let mut seed = 0x1234_5678_9abc_def0u64 ^ (gamma as u64);
            let mut next = || {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                seed
            };
            for _ in 0..900 {
                let a = (next() % bins as u64) as usize;
                let mut b = (next() % bins as u64) as usize;
                if a == b {
                    b = (b + 1) % bins;
                }
                if next() % 3 == 0 && truth[a][b] > 0.0 {
                    // Subtract an exact recorded fraction (half or all of
                    // the current share) so entries can hit zero.
                    let d = if next() % 2 == 0 { truth[a][b] } else { truth[a][b] / 2.0 };
                    idx.sub(bid(a), bid(b), d);
                    truth[a][b] -= d;
                    truth[b][a] = truth[a][b];
                } else {
                    let d = ((next() % 100) as f64 + 1.0) / 1000.0;
                    idx.add(bid(a), bid(b), d);
                    truth[a][b] += d;
                    truth[b][a] = truth[a][b];
                }
            }
            for i in 0..bins {
                let mut row: Vec<f64> = truth[i].clone();
                row.sort_by(|x, y| y.total_cmp(x));
                let expected: f64 = row.iter().take(k).sum();
                assert!(
                    (idx.worst_failover(bid(i)) - expected).abs() < 1e-9,
                    "γ={gamma} bin {i}: cache {} vs truth {expected}",
                    idx.worst_failover(bid(i))
                );
            }
        }
    }

    #[test]
    fn top_cache_matches_exhaustive_scan() {
        // Randomized cross-check of the increase-only top-k maintenance.
        let mut idx = index_with_bins(3, 8);
        let mut truth = vec![vec![0.0f64; 8]; 8];
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..500 {
            let a = (next() % 8) as usize;
            let mut b = (next() % 8) as usize;
            if a == b {
                b = (b + 1) % 8;
            }
            let d = ((next() % 100) as f64 + 1.0) / 1000.0;
            idx.add(bid(a), bid(b), d);
            truth[a][b] += d;
            truth[b][a] += d;
        }
        for i in 0..8 {
            let mut row: Vec<f64> = truth[i].clone();
            row.sort_by(|x, y| y.total_cmp(x));
            let expected: f64 = row.iter().take(2).sum();
            assert!(
                (idx.worst_failover(bid(i)) - expected).abs() < 1e-9,
                "bin {i}: cache {} vs truth {expected}",
                idx.worst_failover(bid(i))
            );
        }
    }

    #[test]
    fn top_cache_matches_exhaustive_scan_large_gamma() {
        // Same cross-check at γ = 14 (k = 13): exercises the single-swap
        // bubble maintenance and the spill path of the candidate buffer.
        const BINS: usize = 16;
        let mut idx = index_with_bins(14, BINS);
        let mut truth = vec![vec![0.0f64; BINS]; BINS];
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..800 {
            let a = (next() % BINS as u64) as usize;
            let mut b = (next() % BINS as u64) as usize;
            if a == b {
                b = (b + 1) % BINS;
            }
            let d = ((next() % 100) as f64 + 1.0) / 1000.0;
            idx.add(bid(a), bid(b), d);
            truth[a][b] += d;
            truth[b][a] += d;
        }
        for i in 0..BINS {
            let mut row: Vec<f64> = truth[i].clone();
            row.sort_by(|x, y| y.total_cmp(x));
            let expected: f64 = row.iter().take(13).sum();
            assert!(
                (idx.worst_failover(bid(i)) - expected).abs() < 1e-9,
                "bin {i}: cache {} vs truth {expected}",
                idx.worst_failover(bid(i))
            );
            // Tentative queries agree with a from-scratch adjusted scan.
            let adj = [(bid((i + 1) % BINS), 0.017), (bid((i + 2) % BINS), 0.031)];
            let mut adjusted = truth[i].clone();
            for &(p, d) in &adj {
                adjusted[p.0] += d;
            }
            adjusted.sort_by(|x, y| y.total_cmp(x));
            let expected: f64 = adjusted.iter().take(13).sum();
            let got = idx.worst_failover_with(bid(i), &adj);
            assert!((got - expected).abs() < 1e-9, "bin {i}: adjusted {got} vs {expected}");
        }
    }

    #[test]
    fn candidate_set_grows_past_twelve_entries() {
        // Regression for the fixed 12-slot candidate buffer: with γ = 14
        // the top cache holds k = 13 entries, so even a single adjustment
        // overflowed the old buffer and dropped the smallest candidates,
        // under-estimating the reserve.
        let mut idx = index_with_bins(14, 15);
        for p in 1..=13usize {
            idx.add(bid(0), bid(p), p as f64 / 100.0);
        }
        // Adjust the smallest cached peer upward by 0.001.
        let got = idx.worst_failover_with(bid(0), &[(bid(1), 0.001)]);
        let expected: f64 = (1..=13).map(|p| p as f64 / 100.0).sum::<f64>() + 0.001;
        assert!((got - expected).abs() < 1e-9, "got {got}, expected {expected}");
        // A new 14th peer below every cached entry must still be ranked
        // (it loses to the cached ones, not to buffer truncation).
        let got = idx.worst_failover_with(bid(0), &[(bid(14), 0.005)]);
        let expected: f64 = (1..=13).map(|p| p as f64 / 100.0).sum::<f64>();
        assert!((got - expected).abs() < 1e-9, "got {got}, expected {expected}");
    }

    #[test]
    fn tentative_adjustments_do_not_mutate() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.2);
        let with = idx.worst_failover_with(bid(0), &[(bid(2), 0.3)]);
        assert!((with - 0.3).abs() < 1e-12);
        assert!((idx.worst_failover(bid(0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tentative_adjustment_on_existing_peer() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.25);
        let with = idx.worst_failover_with(bid(0), &[(bid(1), 0.1)]);
        assert!((with - 0.3).abs() < 1e-12);
    }

    #[test]
    fn duplicate_adjustments_for_one_peer_are_summed() {
        // A sibling adjustment and a growth-headroom adjustment can target
        // the same peer; the failover estimate must add them, not take the
        // larger of the two.
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(2), 0.05);
        let f = idx.worst_failover_with(bid(0), &[(bid(1), 0.04), (bid(1), 0.03)]);
        assert!((f - 0.07).abs() < 1e-12, "got {f}");
        // With an existing entry for the peer, the base is included too.
        idx.add(bid(0), bid(1), 0.1);
        let f = idx.worst_failover_with(bid(0), &[(bid(1), 0.04), (bid(1), 0.03)]);
        assert!((f - 0.17).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn failover_from_specific_set() {
        let mut idx = index_with_bins(3, 4);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.5);
        let f = idx.failover_from(bid(0), &[bid(1), bid(3)]);
        assert!((f - 0.2).abs() < 1e-12);
        // A bin in the failed set equal to the target is ignored.
        let f = idx.failover_from(bid(0), &[bid(0), bid(2)]);
        assert!((f - 0.5).abs() < 1e-12);
    }
}
