//! Incremental shared-load bookkeeping.
//!
//! For robustness checks, every algorithm needs the quantity
//! `|Sᵢ ∩ Sⱼ|` — the total load, on bin `Sᵢ`, of replicas whose tenant also
//! has a replica on bin `Sⱼ` (paper §II). Because replica loads within a
//! tenant are equal, the matrix is symmetric, and because tenants are never
//! removed, entries only ever grow. [`SharedIndex`] exploits both facts to
//! answer "sum of the `γ−1` largest shared loads" — the failover reserve a
//! bin must keep — in `O(1)` via a per-bin top-`k` cache.

use crate::bin::BinId;
use std::collections::HashMap;

/// Per-bin cache of the `k` largest shared-load entries.
#[derive(Debug, Clone, Default)]
struct TopK {
    /// `(load, peer)` pairs sorted descending by load; length ≤ k.
    entries: Vec<(f64, BinId)>,
}

impl TopK {
    /// Records that the shared load with `peer` is now `value`
    /// (monotonically non-decreasing updates only).
    fn update(&mut self, k: usize, peer: BinId, value: f64) {
        if let Some(slot) = self.entries.iter_mut().find(|(_, p)| *p == peer) {
            slot.0 = value;
        } else if self.entries.len() < k {
            self.entries.push((value, peer));
        } else if let Some(min) =
            self.entries.iter_mut().min_by(|a, b| a.0.partial_cmp(&b.0).expect("loads are finite"))
        {
            // Entries only grow, so every non-cached entry is ≤ the cached
            // minimum; replacing the minimum preserves the top-k invariant.
            if value > min.0 {
                *min = (value, peer);
            }
        }
        self.entries.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("loads are finite"));
    }

    fn sum(&self) -> f64 {
        self.entries.iter().map(|(v, _)| v).sum()
    }
}

/// Symmetric shared-load matrix with `O(1)` worst-failover queries.
#[derive(Debug, Clone, Default)]
pub(crate) struct SharedIndex {
    /// `γ − 1`: how many simultaneous peer failures a bin must absorb.
    k: usize,
    /// `map[i][j] = |Sᵢ ∩ Sⱼ|` (stored for both orders).
    map: Vec<HashMap<BinId, f64>>,
    tops: Vec<TopK>,
}

impl SharedIndex {
    pub(crate) fn new(gamma: usize) -> Self {
        SharedIndex { k: gamma - 1, map: Vec::new(), tops: Vec::new() }
    }

    /// Registers a newly opened bin.
    pub(crate) fn push_bin(&mut self) {
        self.map.push(HashMap::new());
        self.tops.push(TopK::default());
    }

    /// Number of bins tracked.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Adds `delta` to the shared load between `a` and `b` (both orders).
    pub(crate) fn add(&mut self, a: BinId, b: BinId, delta: f64) {
        debug_assert_ne!(a, b, "a bin does not share load with itself");
        for (x, y) in [(a, b), (b, a)] {
            let entry = self.map[x.0].entry(y).or_insert(0.0);
            *entry += delta;
            let value = *entry;
            self.tops[x.0].update(self.k, y, value);
        }
    }

    /// Shared load `|a ∩ b|`.
    pub(crate) fn get(&self, a: BinId, b: BinId) -> f64 {
        self.map[a.0].get(&b).copied().unwrap_or(0.0)
    }

    /// Sum of the `γ − 1` largest shared loads of `bin`: the worst-case
    /// extra load redirected to `bin` by any `γ − 1` simultaneous failures.
    pub(crate) fn worst_failover(&self, bin: BinId) -> f64 {
        self.tops[bin.0].sum()
    }

    /// Sum of the `k` largest shared loads of `bin` (`k ≤ γ − 1`), as if the
    /// shared loads with each peer in `adjustments` had already been
    /// increased by the given deltas.
    ///
    /// `k = γ − 1` is the robustness reserve; `k = 1` is the single-failure
    /// reserve used by the RFI baseline.
    pub(crate) fn top_shared_sum_with(
        &self,
        bin: BinId,
        adjustments: &[(BinId, f64)],
        k: usize,
    ) -> f64 {
        debug_assert!(k <= self.k, "top cache only holds γ−1 entries");
        let top = &self.tops[bin.0].entries;
        // Fast path: no adjustments — the cache already holds the answer.
        if adjustments.is_empty() {
            return top.iter().take(k).map(|(v, _)| v).sum();
        }
        // Candidate set: cached top entries plus every adjusted peer; any
        // other peer is ≤ the cached minimum and unadjusted. Kept on the
        // stack — this runs in the inner loop of every placement scan.
        fn push(candidates: &mut [(f64, BinId); 12], len: &mut usize, v: f64, p: BinId) {
            if *len < candidates.len() {
                candidates[*len] = (v, p);
                *len += 1;
            } else {
                // Overflow (γ + adjustments > 12): replace the minimum,
                // which cannot be among the top-k anyway (k ≤ γ−1 < 12).
                let mi = candidates
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                if v > candidates[mi].0 {
                    candidates[mi] = (v, p);
                }
            }
        }
        let mut candidates: [(f64, BinId); 12] = [(f64::NEG_INFINITY, BinId(usize::MAX)); 12];
        let mut len = 0usize;
        for &(v, p) in top {
            let adj: f64 = adjustments.iter().filter(|(b, _)| *b == p).map(|(_, d)| d).sum();
            push(&mut candidates, &mut len, v + adj, p);
        }
        for (i, &(p, _)) in adjustments.iter().enumerate() {
            // Aggregate every delta targeting the same peer (a sibling
            // adjustment and a growth-headroom adjustment can name the
            // same bin) and emit one candidate per peer.
            if p == bin
                || top.iter().any(|(_, q)| *q == p)
                || adjustments[..i].iter().any(|(q, _)| *q == p)
            {
                continue;
            }
            let total: f64 = adjustments.iter().filter(|(q, _)| *q == p).map(|(_, d)| d).sum();
            push(&mut candidates, &mut len, self.get(bin, p) + total, p);
        }
        let slice = &mut candidates[..len];
        slice.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        slice.iter().take(k).map(|(v, _)| v).sum()
    }

    /// Like [`Self::worst_failover`], but as if the shared loads of `bin`
    /// with each peer in `adjustments` had already been increased by the
    /// given deltas. Used for tentative m-fit checks without mutating state.
    pub(crate) fn worst_failover_with(&self, bin: BinId, adjustments: &[(BinId, f64)]) -> f64 {
        // Candidate set: cached top entries plus every adjusted peer. Any
        // peer outside both is ≤ the cached minimum and unadjusted, so it
        // cannot enter the adjusted top-k.
        self.top_shared_sum_with(bin, adjustments, self.k)
    }

    /// Total shared load between `bin` and a specific set of failed peers
    /// (the conservative failover estimate of paper §II).
    pub(crate) fn failover_from(&self, bin: BinId, failed: &[BinId]) -> f64 {
        failed.iter().filter(|f| **f != bin).map(|f| self.get(bin, *f)).sum()
    }

    /// Iterates over `(peer, shared_load)` entries of `bin`.
    pub(crate) fn peers(&self, bin: BinId) -> impl Iterator<Item = (BinId, f64)> + '_ {
        self.map[bin.0].iter().map(|(b, v)| (*b, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(i: usize) -> BinId {
        BinId::new(i)
    }

    fn index_with_bins(gamma: usize, bins: usize) -> SharedIndex {
        let mut idx = SharedIndex::new(gamma);
        for _ in 0..bins {
            idx.push_bin();
        }
        idx
    }

    #[test]
    fn add_is_symmetric() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.3);
        assert_eq!(idx.get(bid(0), bid(1)), 0.3);
        assert_eq!(idx.get(bid(1), bid(0)), 0.3);
        assert_eq!(idx.get(bid(0), bid(2)), 0.0);
    }

    #[test]
    fn worst_failover_gamma2_takes_max() {
        let mut idx = index_with_bins(2, 4);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.5);
        idx.add(bid(0), bid(3), 0.1);
        assert!((idx.worst_failover(bid(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_failover_gamma3_takes_top_two() {
        let mut idx = index_with_bins(3, 4);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.5);
        idx.add(bid(0), bid(3), 0.3);
        assert!((idx.worst_failover(bid(0)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn increments_accumulate_in_top_cache() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.1);
        idx.add(bid(0), bid(2), 0.15);
        // Bump bin 1 past bin 2 through repeated increments.
        idx.add(bid(0), bid(1), 0.1);
        assert!((idx.worst_failover(bid(0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn top_cache_matches_exhaustive_scan() {
        // Randomized cross-check of the increase-only top-k maintenance.
        let mut idx = index_with_bins(3, 8);
        let mut truth = vec![vec![0.0f64; 8]; 8];
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..500 {
            let a = (next() % 8) as usize;
            let mut b = (next() % 8) as usize;
            if a == b {
                b = (b + 1) % 8;
            }
            let d = ((next() % 100) as f64 + 1.0) / 1000.0;
            idx.add(bid(a), bid(b), d);
            truth[a][b] += d;
            truth[b][a] += d;
        }
        for i in 0..8 {
            let mut row: Vec<f64> = truth[i].clone();
            row.sort_by(|x, y| y.partial_cmp(x).unwrap());
            let expected: f64 = row.iter().take(2).sum();
            assert!(
                (idx.worst_failover(bid(i)) - expected).abs() < 1e-9,
                "bin {i}: cache {} vs truth {expected}",
                idx.worst_failover(bid(i))
            );
        }
    }

    #[test]
    fn tentative_adjustments_do_not_mutate() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.2);
        let with = idx.worst_failover_with(bid(0), &[(bid(2), 0.3)]);
        assert!((with - 0.3).abs() < 1e-12);
        assert!((idx.worst_failover(bid(0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tentative_adjustment_on_existing_peer() {
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.25);
        let with = idx.worst_failover_with(bid(0), &[(bid(1), 0.1)]);
        assert!((with - 0.3).abs() < 1e-12);
    }

    #[test]
    fn duplicate_adjustments_for_one_peer_are_summed() {
        // A sibling adjustment and a growth-headroom adjustment can target
        // the same peer; the failover estimate must add them, not take the
        // larger of the two.
        let mut idx = index_with_bins(2, 3);
        idx.add(bid(0), bid(2), 0.05);
        let f = idx.worst_failover_with(bid(0), &[(bid(1), 0.04), (bid(1), 0.03)]);
        assert!((f - 0.07).abs() < 1e-12, "got {f}");
        // With an existing entry for the peer, the base is included too.
        idx.add(bid(0), bid(1), 0.1);
        let f = idx.worst_failover_with(bid(0), &[(bid(1), 0.04), (bid(1), 0.03)]);
        assert!((f - 0.17).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn failover_from_specific_set() {
        let mut idx = index_with_bins(3, 4);
        idx.add(bid(0), bid(1), 0.2);
        idx.add(bid(0), bid(2), 0.5);
        let f = idx.failover_from(bid(0), &[bid(1), bid(3)]);
        assert!((f - 0.2).abs() < 1e-12);
        // A bin in the failed set equal to the target is ignored.
        let f = idx.failover_from(bid(0), &[bid(0), bid(2)]);
        assert!((f - 0.5).abs() < 1e-12);
    }
}
