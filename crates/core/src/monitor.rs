//! The invariant monitor: per-server Theorem-1 health classification.
//!
//! [`crate::validity::check`] answers a boolean question — does the
//! placement survive any `γ − 1` failures *right now*? Under load drift
//! that is not enough: a server can be technically robust but one small
//! upward re-estimate away from violation. The monitor grades every
//! non-empty server on the same worst-case failure set into three states:
//!
//! * [`ServerState::Safe`] — margin comfortably above the configured
//!   at-risk threshold;
//! * [`ServerState::AtRisk`] — still robust, but the slack
//!   `1 − level − worst_failover` has shrunk below the threshold, so the
//!   next drift step may breach Theorem 1;
//! * [`ServerState::Violated`] — the worst-case failover load already
//!   exceeds capacity (the deficit says by how much).
//!
//! The mitigation planner consumes a [`MonitorReport`] and drains the
//! worst-slack servers first; telemetry gauges expose the state counts.

use crate::bin::BinId;
use crate::placement::Placement;
use crate::EPSILON;

/// Default slack threshold below which a robust server counts as at-risk.
///
/// 5% of a unit server: small enough that healthy consolidated placements
/// (which routinely run near capacity) are not flagged wholesale, large
/// enough that a single drifting tenant rarely jumps from `Safe` straight
/// past `AtRisk` into violation.
pub const DEFAULT_AT_RISK_SLACK: f64 = 0.05;

/// Theorem-1 health of one server under the worst-case failure set.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ServerState {
    /// `level + worst_failover ≤ 1` with slack above the threshold.
    Safe,
    /// Still robust, but remaining slack is below the at-risk threshold.
    AtRisk {
        /// Remaining slack `1 − level − worst_failover` (non-negative).
        slack: f64,
    },
    /// Theorem 1 is violated: worst-case failover overloads the server.
    Violated {
        /// Overload depth `level + worst_failover − 1` (positive).
        deficit: f64,
    },
}

impl ServerState {
    /// Whether the server is in violation.
    #[must_use]
    pub fn is_violated(&self) -> bool {
        matches!(self, ServerState::Violated { .. })
    }

    /// Whether the server needs mitigation attention (at risk or violated).
    #[must_use]
    pub fn needs_attention(&self) -> bool {
        !matches!(self, ServerState::Safe)
    }
}

/// One graded server.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServerHealth {
    /// The server.
    pub bin: BinId,
    /// Its current level.
    pub level: f64,
    /// Worst-case failover load onto it.
    pub worst_failover: f64,
    /// Margin `1 − level − worst_failover` (negative iff violated).
    pub margin: f64,
    /// The classification.
    pub state: ServerState,
}

/// The monitor's verdict over a whole placement.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonitorReport {
    /// Slack threshold the grading used.
    pub at_risk_slack: f64,
    /// Non-empty servers graded.
    pub checked_bins: usize,
    /// Servers classified safe.
    pub safe: usize,
    /// At-risk servers with their remaining slack, worst (smallest slack)
    /// first.
    pub at_risk: Vec<(BinId, f64)>,
    /// Violated servers with their overload deficit, worst (largest
    /// deficit) first.
    pub violated: Vec<(BinId, f64)>,
    /// Smallest margin over all graded servers (`1.0` when none).
    pub worst_margin: f64,
}

impl MonitorReport {
    /// Whether every server is robust (none violated; at-risk still counts
    /// as robust).
    #[must_use]
    pub fn is_robust(&self) -> bool {
        self.violated.is_empty()
    }

    /// Servers needing mitigation, worst first: every violated server
    /// (deepest deficit first), then every at-risk server (smallest slack
    /// first).
    #[must_use]
    pub fn attention_order(&self) -> Vec<BinId> {
        self.violated
            .iter()
            .map(|&(bin, _)| bin)
            .chain(self.at_risk.iter().map(|&(bin, _)| bin))
            .collect()
    }
}

/// Grades one server of `placement` against the Theorem-1 worst-case
/// failure set, using `at_risk_slack` as the safe/at-risk boundary.
#[must_use]
pub fn classify_bin(placement: &Placement, bin: BinId, at_risk_slack: f64) -> ServerHealth {
    let level = placement.level(bin);
    let worst_failover = placement.worst_failover(bin);
    let margin = 1.0 - level - worst_failover;
    let state = if margin < -EPSILON {
        ServerState::Violated { deficit: -margin }
    } else if margin < at_risk_slack {
        ServerState::AtRisk { slack: margin.max(0.0) }
    } else {
        ServerState::Safe
    };
    ServerHealth { bin, level, worst_failover, margin, state }
}

/// Grades every non-empty server of `placement` with the
/// [`DEFAULT_AT_RISK_SLACK`] threshold.
#[must_use]
pub fn classify(placement: &Placement) -> MonitorReport {
    classify_with(placement, DEFAULT_AT_RISK_SLACK)
}

/// Grades every non-empty server of `placement`, counting a robust server
/// as at-risk when its slack falls below `at_risk_slack`.
#[must_use]
pub fn classify_with(placement: &Placement, at_risk_slack: f64) -> MonitorReport {
    let mut safe = 0;
    let mut at_risk: Vec<(BinId, f64)> = Vec::new();
    let mut violated: Vec<(BinId, f64)> = Vec::new();
    let mut checked = 0;
    let mut worst_margin = f64::INFINITY;
    for bin in placement.bins() {
        if bin.is_empty() {
            continue;
        }
        checked += 1;
        let health = classify_bin(placement, bin.id(), at_risk_slack);
        worst_margin = worst_margin.min(health.margin);
        match health.state {
            ServerState::Safe => safe += 1,
            ServerState::AtRisk { slack } => at_risk.push((health.bin, slack)),
            ServerState::Violated { deficit } => violated.push((health.bin, deficit)),
        }
    }
    at_risk.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    violated.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    if checked == 0 {
        worst_margin = 1.0;
    }
    MonitorReport { at_risk_slack, checked_bins: checked, safe, at_risk, violated, worst_margin }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;
    use crate::tenant::{Tenant, TenantId};

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    /// γ = 2, two bins sharing one tenant: level = load/2 each, failover =
    /// load/2, so margin = 1 − load.
    fn pair(load: f64) -> (Placement, Vec<BinId>) {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..2).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, load), &[b[0], b[1]]).unwrap();
        (p, b)
    }

    #[test]
    fn classifies_safe_at_risk_and_violated() {
        let (p, b) = pair(0.5);
        let health = classify_bin(&p, b[0], DEFAULT_AT_RISK_SLACK);
        assert_eq!(health.state, ServerState::Safe);
        assert!((health.margin - 0.5).abs() < 1e-12);

        let (p, b) = pair(0.98);
        match classify_bin(&p, b[0], DEFAULT_AT_RISK_SLACK).state {
            ServerState::AtRisk { slack } => assert!((slack - 0.02).abs() < 1e-12),
            other => panic!("expected AtRisk, got {other:?}"),
        }

        // Drift tenant 0 upward past capacity: both bins violate.
        let (mut p, b) = pair(0.9);
        p.update_load(TenantId::new(0), 1.0).unwrap();
        p.place_tenant(&tenant(1, 0.2), &[b[0], b[1]]).unwrap();
        match classify_bin(&p, b[0], DEFAULT_AT_RISK_SLACK).state {
            ServerState::Violated { deficit } => assert!((deficit - 0.2).abs() < 1e-12),
            other => panic!("expected Violated, got {other:?}"),
        }
    }

    #[test]
    fn report_counts_and_orders_states() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..6).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.4), &[b[0], b[1]]).unwrap(); // safe pair
        p.place_tenant(&tenant(1, 0.97), &[b[2], b[3]]).unwrap(); // at-risk pair
        p.place_tenant(&tenant(2, 0.8), &[b[4], b[5]]).unwrap();
        p.place_tenant(&tenant(3, 0.4), &[b[4], b[5]]).unwrap(); // violated pair
        let report = classify(&p);
        assert_eq!(report.checked_bins, 6);
        assert_eq!(report.safe, 2);
        assert_eq!(report.at_risk.len(), 2);
        assert_eq!(report.violated.len(), 2);
        assert!(!report.is_robust());
        assert!((report.worst_margin - (-0.2)).abs() < 1e-12);
        // Violated servers lead the attention order.
        let order = report.attention_order();
        assert_eq!(order.len(), 4);
        assert!(order[..2].contains(&b[4]) && order[..2].contains(&b[5]));
        // The monitor's verdict agrees with the boolean checker.
        assert_eq!(report.is_robust(), p.is_robust());
    }

    #[test]
    fn monitor_agrees_with_validity_checker() {
        for load in [0.1, 0.5, 0.9, 0.999, 1.0] {
            let (p, _) = pair(load);
            let report = classify(&p);
            assert_eq!(report.is_robust(), p.is_robust(), "load {load}");
            let validity = crate::validity::check(&p);
            assert!((report.worst_margin - validity.worst_margin).abs() < 1e-12);
            assert_eq!(report.violated.len(), validity.violations.len());
        }
    }

    #[test]
    fn empty_placement_is_trivially_safe() {
        let report = classify(&Placement::new(3));
        assert_eq!(report.checked_bins, 0);
        assert!(report.is_robust());
        assert_eq!(report.worst_margin, 1.0);
        assert!(report.attention_order().is_empty());
    }

    #[test]
    fn threshold_is_configurable() {
        let (p, _) = pair(0.8); // margin 0.2 everywhere
        assert_eq!(classify_with(&p, 0.1).at_risk.len(), 0);
        assert_eq!(classify_with(&p, 0.3).at_risk.len(), 2);
        let report = classify_with(&p, 0.3);
        assert!((report.at_risk_slack - 0.3).abs() < 1e-12);
        assert_eq!(report.safe, 0);
    }

    #[test]
    fn exact_capacity_counts_as_at_risk_not_violated() {
        let (p, b) = pair(1.0); // margin exactly 0
        let health = classify_bin(&p, b[0], DEFAULT_AT_RISK_SLACK);
        match health.state {
            ServerState::AtRisk { slack } => assert_eq!(slack, 0.0),
            other => panic!("expected AtRisk at exact capacity, got {other:?}"),
        }
        assert!(!health.state.is_violated());
        assert!(health.state.needs_attention());
    }
}
