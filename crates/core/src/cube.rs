//! Cube addressing for stage-2 placement (paper §III, Fig. 3).
//!
//! For each class `τ < K`, CubeFit maintains `γ` *groups* of `τ^(γ−1)` bins.
//! The `τ` payload slots of the bins in one group form a `γ`-dimensional
//! cube with `τ^γ` cells. A per-class counter `cnt_τ ∈ [0, τ^γ)` is written
//! as `γ` base-`τ` digits; replica `j` of a tenant is stored at the cell
//! addressed by the `(j−1)`-fold right-cyclic shift of those digits — the
//! first `γ−1` digits select the bin inside group `j`, the last digit
//! selects the slot. This shifting construction is what guarantees
//! **Lemma 1**: no two bins share replicas of more than one tenant.

use crate::bin::BinId;
use crate::class::ReplicaClass;
use crate::placement::Placement;

/// A `γ`-digit base-`τ` cube address.
///
/// ```
/// use cubefit_core::cube::CubeAddress;
///
/// // τ = 3, γ = 2, counter 7 = (21)₃.
/// let addr = CubeAddress::from_counter(7, 3, 2);
/// assert_eq!(addr.digits(), &[2, 1]);
/// assert_eq!(addr.bin_index(), 2);
/// assert_eq!(addr.slot_index(), 1);
/// // The second replica uses the right-cyclic shift (12)₃.
/// assert_eq!(addr.shifted_right(1).digits(), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeAddress {
    digits: Vec<usize>,
    base: usize,
}

impl CubeAddress {
    /// Interprets `counter` as `gamma` base-`tau` digits
    /// (most-significant first).
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0`, `gamma == 0`, or `counter ≥ tau^gamma`.
    #[must_use]
    pub fn from_counter(counter: u64, tau: usize, gamma: usize) -> Self {
        assert!(tau >= 1 && gamma >= 1, "degenerate cube dimensions");
        let capacity = (tau as u64).pow(gamma as u32);
        assert!(counter < capacity, "counter {counter} out of range for τ^γ = {capacity}");
        let mut digits = vec![0usize; gamma];
        let mut c = counter;
        for d in digits.iter_mut().rev() {
            *d = (c % tau as u64) as usize;
            c /= tau as u64;
        }
        CubeAddress { digits, base: tau }
    }

    /// The digits, most-significant first.
    #[must_use]
    pub fn digits(&self) -> &[usize] {
        &self.digits
    }

    /// The address right-cyclic-shifted `times` times:
    /// `(d₁…d_γ) → (d_γ, d₁…d_{γ−1})` per shift.
    #[must_use]
    pub fn shifted_right(&self, times: usize) -> CubeAddress {
        let gamma = self.digits.len();
        let times = times % gamma;
        let mut digits = Vec::with_capacity(gamma);
        digits.extend_from_slice(&self.digits[gamma - times..]);
        digits.extend_from_slice(&self.digits[..gamma - times]);
        CubeAddress { digits, base: self.base }
    }

    /// Index of the bin inside a group: the first `γ−1` digits read as a
    /// base-`τ` number.
    #[must_use]
    pub fn bin_index(&self) -> usize {
        self.digits[..self.digits.len() - 1].iter().fold(0usize, |acc, d| acc * self.base + d)
    }

    /// Index of the slot inside the bin: the last digit.
    #[must_use]
    pub fn slot_index(&self) -> usize {
        *self.digits.last().expect("addresses have at least one digit")
    }
}

/// One replica's target: a bin (lazily opened) and a slot within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotTarget {
    pub bin: BinId,
    pub slot: usize,
    /// Whether this placement opened the bin.
    pub opened: bool,
}

/// The γ groups of cube bins for one class, plus the class counter.
#[derive(Debug, Clone)]
pub(crate) struct ClassGroups {
    tau: usize,
    gamma: usize,
    counter: u64,
    /// `gamma` groups of `τ^(γ−1)` lazily opened bins.
    groups: Vec<Vec<Option<BinId>>>,
}

impl ClassGroups {
    pub(crate) fn new(tau: usize, gamma: usize) -> Self {
        assert!(tau >= 1 && gamma >= 2);
        let group_size = tau.pow(gamma as u32 - 1);
        ClassGroups { tau, gamma, counter: 0, groups: vec![vec![None; group_size]; gamma] }
    }

    /// Total cells per generation (`τ^γ`).
    fn capacity(&self) -> u64 {
        (self.tau as u64).pow(self.gamma as u32)
    }

    /// Assigns the next tenant's `γ` replicas to slots, opening bins on
    /// demand in `placement`, and advances the counter (allocating a fresh
    /// generation of groups when the cube is full).
    pub(crate) fn assign(&mut self, placement: &mut Placement) -> Vec<SlotTarget> {
        let address = CubeAddress::from_counter(self.counter, self.tau, self.gamma);
        let mut targets = Vec::with_capacity(self.gamma);
        for j in 0..self.gamma {
            let shifted = address.shifted_right(j);
            let bin_index = shifted.bin_index();
            let slot = shifted.slot_index();
            let entry = &mut self.groups[j][bin_index];
            let (bin, opened) = match *entry {
                Some(bin) => (bin, false),
                None => {
                    let bin = placement.open_bin(Some(ReplicaClass::new(self.tau)));
                    *entry = Some(bin);
                    (bin, true)
                }
            };
            targets.push(SlotTarget { bin, slot, opened });
        }
        self.counter += 1;
        if self.counter == self.capacity() {
            let group_size = self.tau.pow(self.gamma as u32 - 1);
            self.groups = vec![vec![None; group_size]; self.gamma];
            self.counter = 0;
        }
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn paper_example_tau3_gamma2() {
        // I₃ = (21)₃ → first replica slot (2,1) of cube 1, second (1,2) of cube 2.
        let addr = CubeAddress::from_counter(7, 3, 2);
        assert_eq!(addr.digits(), &[2, 1]);
        let second = addr.shifted_right(1);
        assert_eq!(second.digits(), &[1, 2]);
        assert_eq!(second.bin_index(), 1);
        assert_eq!(second.slot_index(), 2);
    }

    #[test]
    fn paper_example_tau3_gamma3() {
        // I₃ = (001)₃ → slots (0,0,1), (1,0,0), (0,1,0).
        let addr = CubeAddress::from_counter(1, 3, 3);
        assert_eq!(addr.digits(), &[0, 0, 1]);
        assert_eq!(addr.shifted_right(1).digits(), &[1, 0, 0]);
        assert_eq!(addr.shifted_right(2).digits(), &[0, 1, 0]);
        // Bin index of (1,0,0) inside its group is (1,0)₃ = 3.
        assert_eq!(addr.shifted_right(1).bin_index(), 3);
        assert_eq!(addr.shifted_right(1).slot_index(), 0);
    }

    #[test]
    fn shift_is_cyclic() {
        let addr = CubeAddress::from_counter(5, 2, 3); // (101)₂
        assert_eq!(addr.shifted_right(3), addr);
        assert_eq!(addr.shifted_right(4), addr.shifted_right(1));
    }

    #[test]
    fn counter_roundtrip_all_cells() {
        // Every counter value addresses a distinct cell in each group.
        for (tau, gamma) in [(2usize, 2usize), (3, 2), (3, 3), (4, 3)] {
            let capacity = tau.pow(gamma as u32) as u64;
            for j in 0..gamma {
                let mut seen = HashSet::new();
                for c in 0..capacity {
                    let a = CubeAddress::from_counter(c, tau, gamma).shifted_right(j);
                    assert!(seen.insert((a.bin_index(), a.slot_index())));
                }
                assert_eq!(seen.len(), capacity as usize);
            }
        }
    }

    /// Lemma 1: within one generation, any two bins (across all groups)
    /// share at most one tenant.
    #[test]
    fn lemma1_no_two_bins_share_two_tenants() {
        for (tau, gamma) in [(2usize, 2usize), (3, 2), (3, 3), (2, 3), (4, 2)] {
            let mut placement = Placement::new(gamma);
            let mut groups = ClassGroups::new(tau, gamma);
            let capacity = tau.pow(gamma as u32);
            // tenant → set of bins hosting it
            let mut hosted: Vec<Vec<BinId>> = Vec::new();
            for _ in 0..capacity {
                let targets = groups.assign(&mut placement);
                hosted.push(targets.iter().map(|t| t.bin).collect());
            }
            let mut pair_counts: HashMap<(BinId, BinId), usize> = HashMap::new();
            for bins in &hosted {
                for (i, &a) in bins.iter().enumerate() {
                    for &b in &bins[i + 1..] {
                        let key = if a < b { (a, b) } else { (b, a) };
                        *pair_counts.entry(key).or_insert(0) += 1;
                    }
                }
            }
            for ((a, b), count) in pair_counts {
                assert!(count <= 1, "τ={tau} γ={gamma}: bins {a} and {b} share {count} tenants");
            }
        }
    }

    #[test]
    fn assign_opens_bins_lazily_and_fills_slots() {
        let mut placement = Placement::new(2);
        let mut groups = ClassGroups::new(3, 2);
        let first = groups.assign(&mut placement);
        assert_eq!(first.len(), 2);
        assert!(first.iter().all(|t| t.opened));
        assert_eq!(placement.created_bins(), 2);
        // Counter 1 = (01)₃: replica 1 → bin 0 slot 1 (bin already open),
        // replica 2 → (10)₃ → bin 1 of group 2 (new).
        let second = groups.assign(&mut placement);
        assert!(!second[0].opened);
        assert_eq!(second[0].bin, first[0].bin);
        assert_eq!(second[0].slot, 1);
        assert!(second[1].opened);
    }

    #[test]
    fn generation_reset_after_full_cube() {
        let mut placement = Placement::new(2);
        let mut groups = ClassGroups::new(2, 2);
        let mut bins_gen1 = HashSet::new();
        for _ in 0..4 {
            for t in groups.assign(&mut placement) {
                bins_gen1.insert(t.bin);
            }
        }
        // Next assignment starts a fresh generation with brand-new bins.
        let fresh = groups.assign(&mut placement);
        for t in fresh {
            assert!(t.opened);
            assert!(!bins_gen1.contains(&t.bin));
        }
    }

    #[test]
    fn tau1_every_tenant_gets_fresh_bins() {
        let mut placement = Placement::new(3);
        let mut groups = ClassGroups::new(1, 3);
        let a = groups.assign(&mut placement);
        let b = groups.assign(&mut placement);
        let bins_a: HashSet<BinId> = a.iter().map(|t| t.bin).collect();
        let bins_b: HashSet<BinId> = b.iter().map(|t| t.bin).collect();
        assert!(bins_a.is_disjoint(&bins_b));
        assert_eq!(placement.created_bins(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn counter_out_of_range_panics() {
        let _ = CubeAddress::from_counter(9, 3, 2);
    }
}
