//! Error types for the placement substrate and algorithms.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by placement construction and the consolidation
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A tenant load outside the valid range `(0, 1]` was supplied.
    InvalidLoad {
        /// The offending value.
        value: f64,
    },
    /// A replication factor outside the supported range was supplied.
    InvalidReplication {
        /// The offending value.
        gamma: usize,
    },
    /// The number of classes `K` is too small for the requested
    /// configuration.
    InvalidClasses {
        /// The offending value.
        classes: usize,
        /// Human-readable reason the value was rejected.
        reason: &'static str,
    },
    /// The theoretical tiny-tenant policy requires `α_K ≥ γ`, i.e. `K`
    /// large enough relative to the replication factor.
    TinyPolicyUnsupported {
        /// Number of classes configured.
        classes: usize,
        /// Replication factor configured.
        gamma: usize,
        /// The derived `α_K` value.
        alpha: usize,
    },
    /// An interleaving parameter `μ` outside `(0, 1]` was supplied.
    InvalidMu {
        /// The offending value.
        mu: f64,
    },
    /// A tenant id was used twice with the same consolidator.
    DuplicateTenant {
        /// The duplicated id.
        tenant: crate::tenant::TenantId,
    },
    /// An operation referenced a tenant the placement does not contain
    /// (e.g. removing an id that never arrived or already departed).
    UnknownTenant {
        /// The unknown id.
        tenant: crate::tenant::TenantId,
    },
    /// An internal invariant was violated; indicates a bug in this crate.
    InternalInvariant {
        /// Description of the violated invariant.
        detail: String,
    },
    /// A harness or service configuration failed validation.
    InvalidConfig {
        /// Human-readable reason the configuration was rejected.
        detail: String,
    },
    /// The durability layer (write-ahead journal, checkpoint, recovery)
    /// failed — an I/O error or on-disk corruption, never an in-memory
    /// invariant bug.
    Durability {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl Error {
    /// Convenience constructor for configuration-validation failures.
    #[must_use]
    pub fn invalid_config(detail: impl Into<String>) -> Self {
        Error::InvalidConfig { detail: detail.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidLoad { value } => {
                write!(f, "tenant load {value} is outside the valid range (0, 1]")
            }
            Error::InvalidReplication { gamma } => {
                write!(f, "replication factor {gamma} is not supported (must be ≥ 2)")
            }
            Error::InvalidClasses { classes, reason } => {
                write!(f, "class count {classes} rejected: {reason}")
            }
            Error::TinyPolicyUnsupported { classes, gamma, alpha } => write!(
                f,
                "theoretical tiny policy needs α_K ≥ γ but K={classes}, γ={gamma} gives α_K={alpha}"
            ),
            Error::InvalidMu { mu } => {
                write!(f, "interleaving parameter {mu} is outside the valid range (0, 1]")
            }
            Error::DuplicateTenant { tenant } => {
                write!(f, "tenant {tenant} was already placed")
            }
            Error::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant} is not in the placement")
            }
            Error::InternalInvariant { detail } => {
                write!(f, "internal invariant violated: {detail}")
            }
            Error::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            Error::Durability { detail } => {
                write!(f, "durability failure: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantId;

    #[test]
    fn display_is_nonempty_and_lowercase_style() {
        let errors = [
            Error::InvalidLoad { value: 2.0 },
            Error::InvalidReplication { gamma: 1 },
            Error::InvalidClasses { classes: 0, reason: "must be positive" },
            Error::TinyPolicyUnsupported { classes: 10, gamma: 3, alpha: 2 },
            Error::InvalidMu { mu: 0.0 },
            Error::DuplicateTenant { tenant: TenantId::new(7) },
            Error::UnknownTenant { tenant: TenantId::new(8) },
            Error::InternalInvariant { detail: "oops".into() },
            Error::InvalidConfig { detail: "rate must be positive".into() },
            Error::Durability { detail: "wal frame crc mismatch".into() },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
