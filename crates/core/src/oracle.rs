//! Differential placement audit: a naive reference oracle plus a
//! consolidator wrapper that cross-checks every incremental decision.
//!
//! The fast path of every algorithm in this workspace rests on the
//! incremental bookkeeping of [`crate::shared::SharedIndex`] — per-bin
//! levels, the pairwise shared-load matrix, and cached top-`γ−1` failover
//! reserves. A bug there (e.g. a truncated adjustment buffer at large `γ`)
//! does not crash; it silently accepts a placement that violates
//! Theorem 1. The [`Oracle`] recomputes all of those quantities from
//! nothing but the tenant list — `O(bins · γ)` state rebuilt per audit, no
//! caches, no incremental updates — and [`audit`] compares the two within
//! [`crate::EPSILON`]. [`AuditedConsolidator`] wires the audit behind any
//! [`Consolidator`] so differential test suites and the `cubefit check
//! --audit` command catch unsound-but-plausible placements the moment they
//! are produced, with a replayable JSON trace.

use crate::algorithm::{Consolidator, LoadUpdateOutcome, PlacementOutcome, RemovalOutcome};
use crate::bin::BinId;
use crate::error::Result;
use crate::placement::Placement;
use crate::recovery::RecoveryReport;
use crate::tenant::{Tenant, TenantId};
use crate::EPSILON;
use std::collections::HashMap;
use std::fmt;

/// Tolerance for incremental-vs-reference comparisons.
///
/// Both sides sum the same replica loads, only in different orders, so any
/// honest divergence is either zero or a dropped/duplicated term — far
/// larger than accumulated rounding at these magnitudes.
pub const AUDIT_TOLERANCE: f64 = 1e-9;

/// Reference placement state recomputed from scratch.
///
/// Built by [`Oracle::rebuild`] from nothing but
/// [`Placement::tenants`] — the arrival-ordered `(tenant, load, bins)`
/// triples — so it shares no code path and no cached state with the
/// incremental bookkeeping it is used to check.
#[derive(Debug, Clone)]
pub struct Oracle {
    gamma: usize,
    /// Level of every bin (index = raw bin id), recomputed by summation.
    levels: Vec<f64>,
    /// Sparse shared-load rows: `rows[i][j] = |Sᵢ ∩ Sⱼ|`.
    rows: Vec<HashMap<BinId, f64>>,
}

impl Oracle {
    /// Recomputes levels and the full shared-load matrix of `placement`
    /// from its tenant list.
    #[must_use]
    pub fn rebuild(placement: &Placement) -> Self {
        let bins = placement.created_bins();
        let gamma = placement.gamma();
        let mut levels = vec![0.0f64; bins];
        let mut rows: Vec<HashMap<BinId, f64>> = vec![HashMap::new(); bins];
        for (_, load, hosts) in placement.tenants() {
            let replica = load / gamma as f64;
            for (i, &bin) in hosts.iter().enumerate() {
                levels[bin.index()] += replica;
                for (j, &peer) in hosts.iter().enumerate() {
                    if i != j {
                        *rows[bin.index()].entry(peer).or_insert(0.0) += replica;
                    }
                }
            }
        }
        Oracle { gamma, levels, rows }
    }

    /// [`Oracle::rebuild`], parallelized: the tenant list is partitioned
    /// across `workers` threads by `tenant_id % workers` — the same hash
    /// partitioning [`crate::backend::ShardedBackend`] routes by — each
    /// worker sums its partition's levels and shared-load rows into partial
    /// state, and the partials are merged by summation in worker order.
    ///
    /// The merged numbers can differ from [`Oracle::rebuild`]'s only by
    /// float association (the same replica terms are summed in a different
    /// order), which [`AUDIT_TOLERANCE`] absorbs by design.
    #[must_use]
    pub fn rebuild_sharded(placement: &Placement, workers: usize) -> Self {
        let workers = workers.max(1);
        let bins = placement.created_bins();
        let gamma = placement.gamma();
        let tenants: Vec<(TenantId, f64, &[BinId])> = placement.tenants().collect();
        // Per-worker partial state: (levels, shared-load rows).
        type Partial = (Vec<f64>, Vec<HashMap<BinId, f64>>);
        let partials: Vec<Partial> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let tenants = &tenants;
                    scope.spawn(move |_| {
                        let mut levels = vec![0.0f64; bins];
                        let mut rows: Vec<HashMap<BinId, f64>> = vec![HashMap::new(); bins];
                        let owned = tenants
                            .iter()
                            .filter(|(id, _, _)| (id.get() % workers as u64) as usize == worker);
                        for (_, load, hosts) in owned {
                            let replica = load / gamma as f64;
                            for (i, &bin) in hosts.iter().enumerate() {
                                levels[bin.index()] += replica;
                                for (j, &peer) in hosts.iter().enumerate() {
                                    if i != j {
                                        *rows[bin.index()].entry(peer).or_insert(0.0) += replica;
                                    }
                                }
                            }
                        }
                        (levels, rows)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("audit worker panicked")).collect()
        })
        .expect("audit worker panicked");
        let mut levels = vec![0.0f64; bins];
        let mut rows: Vec<HashMap<BinId, f64>> = vec![HashMap::new(); bins];
        for (partial_levels, partial_rows) in partials {
            for (bin, level) in partial_levels.into_iter().enumerate() {
                levels[bin] += level;
            }
            for (bin, row) in partial_rows.into_iter().enumerate() {
                for (peer, value) in row {
                    *rows[bin].entry(peer).or_insert(0.0) += value;
                }
            }
        }
        Oracle { gamma, levels, rows }
    }

    /// Replication factor of the audited placement.
    #[must_use]
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Number of bins covered.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.levels.len()
    }

    /// Reference level of `bin`.
    #[must_use]
    pub fn level(&self, bin: BinId) -> f64 {
        self.levels[bin.index()]
    }

    /// Reference shared load `|a ∩ b|`.
    #[must_use]
    pub fn shared_load(&self, a: BinId, b: BinId) -> f64 {
        self.rows[a.index()].get(&b).copied().unwrap_or(0.0)
    }

    /// Reference worst-case failover of `bin`: its `γ − 1` largest shared
    /// loads, found by sorting the full row (no cache involved).
    #[must_use]
    pub fn worst_failover(&self, bin: BinId) -> f64 {
        self.top_shared_sum(bin, self.gamma - 1)
    }

    /// Sum of the `k` largest shared loads of `bin`.
    #[must_use]
    pub fn top_shared_sum(&self, bin: BinId, k: usize) -> f64 {
        let mut row: Vec<f64> = self.rows[bin.index()].values().copied().collect();
        row.sort_unstable_by(|a, b| b.total_cmp(a));
        row.iter().take(k).sum()
    }

    /// Whether the placement satisfies Theorem 1 by the reference numbers:
    /// `level + worst_failover ≤ 1 + EPSILON` for every bin.
    #[must_use]
    pub fn is_robust(&self) -> bool {
        self.worst_margin() >= -EPSILON
    }

    /// Smallest margin `1 − level − worst_failover` over non-empty bins
    /// (`1.0` for an empty placement, matching
    /// [`crate::validity::check`]).
    #[must_use]
    pub fn worst_margin(&self) -> f64 {
        let mut worst = f64::INFINITY;
        for (i, &level) in self.levels.iter().enumerate() {
            if level == 0.0 && self.rows[i].is_empty() {
                continue;
            }
            worst = worst.min(1.0 - level - self.worst_failover(BinId::new(i)));
        }
        if worst == f64::INFINITY {
            1.0
        } else {
            worst
        }
    }
}

/// Which audited quantity diverged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceKind {
    /// A bin's level.
    Level,
    /// A pairwise shared load (the peer names the column).
    SharedLoad {
        /// The other bin of the diverging matrix entry.
        peer: BinId,
    },
    /// A bin's worst-case failover reserve.
    WorstFailover,
    /// The overall robustness verdict (`1.0` = robust, `0.0` = not).
    Robustness,
}

/// One disagreement between the incremental bookkeeping and the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// What diverged.
    pub kind: DivergenceKind,
    /// The bin the quantity belongs to.
    pub bin: BinId,
    /// The incremental (cached) value.
    pub incremental: f64,
    /// The from-scratch reference value.
    pub reference: f64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DivergenceKind::Level => write!(
                f,
                "level({}): incremental {} vs oracle {}",
                self.bin, self.incremental, self.reference
            ),
            DivergenceKind::SharedLoad { peer } => write!(
                f,
                "shared({}, {peer}): incremental {} vs oracle {}",
                self.bin, self.incremental, self.reference
            ),
            DivergenceKind::WorstFailover => write!(
                f,
                "worst_failover({}): incremental {} vs oracle {}",
                self.bin, self.incremental, self.reference
            ),
            DivergenceKind::Robustness => write!(
                f,
                "is_robust: incremental {} vs oracle {}",
                self.incremental != 0.0,
                self.reference != 0.0
            ),
        }
    }
}

/// Cross-checks every incrementally maintained quantity of `placement`
/// against a freshly rebuilt [`Oracle`].
///
/// Compares, within [`AUDIT_TOLERANCE`]:
///
/// * every bin's level,
/// * every non-zero shared-load matrix entry, in both directions (an entry
///   present on one side and absent on the other is a divergence),
/// * every bin's worst-case failover reserve,
/// * the overall [`Placement::is_robust`] verdict.
///
/// # Errors
///
/// Returns the full list of divergences (never empty) if any quantity
/// disagrees.
pub fn audit(placement: &Placement) -> std::result::Result<(), Vec<Divergence>> {
    let oracle = Oracle::rebuild(placement);
    let divergences = compare(placement, &oracle);
    if divergences.is_empty() {
        Ok(())
    } else {
        Err(divergences)
    }
}

/// Compares every incrementally maintained quantity of `placement` against
/// an already-built [`Oracle`] (see [`audit`] for the quantity list) and
/// returns the divergences — empty when the two agree within
/// [`AUDIT_TOLERANCE`].
#[must_use]
pub fn compare(placement: &Placement, oracle: &Oracle) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    for bin in placement.bins() {
        let id = bin.id();
        let level = bin.level();
        if (level - oracle.level(id)).abs() > AUDIT_TOLERANCE {
            divergences.push(Divergence {
                kind: DivergenceKind::Level,
                bin: id,
                incremental: level,
                reference: oracle.level(id),
            });
        }
        // Shared rows: the incremental side enumerates its entries; the
        // oracle side covers entries the incremental map dropped.
        for (peer, value) in placement.shared_peers(id) {
            if (value - oracle.shared_load(id, peer)).abs() > AUDIT_TOLERANCE {
                divergences.push(Divergence {
                    kind: DivergenceKind::SharedLoad { peer },
                    bin: id,
                    incremental: value,
                    reference: oracle.shared_load(id, peer),
                });
            }
        }
        for (&peer, &value) in &oracle.rows[id.index()] {
            if (placement.shared_load(id, peer) - value).abs() > AUDIT_TOLERANCE
                && !divergences
                    .iter()
                    .any(|d| d.bin == id && d.kind == DivergenceKind::SharedLoad { peer })
            {
                divergences.push(Divergence {
                    kind: DivergenceKind::SharedLoad { peer },
                    bin: id,
                    incremental: placement.shared_load(id, peer),
                    reference: value,
                });
            }
        }
        let failover = placement.worst_failover(id);
        if (failover - oracle.worst_failover(id)).abs() > AUDIT_TOLERANCE {
            divergences.push(Divergence {
                kind: DivergenceKind::WorstFailover,
                bin: id,
                incremental: failover,
                reference: oracle.worst_failover(id),
            });
        }
    }
    let incremental_robust = placement.is_robust();
    if incremental_robust != oracle.is_robust() {
        divergences.push(Divergence {
            kind: DivergenceKind::Robustness,
            bin: BinId::new(0),
            incremental: f64::from(u8::from(incremental_robust)),
            reference: f64::from(u8::from(oracle.is_robust())),
        });
    }
    divergences
}

/// What a sharded audit found wrong: oracle divergences (as in [`audit`])
/// plus cross-shard reconciliation failures from
/// [`Placement::reconcile_shards`]. At least one of the two lists is
/// non-empty whenever this is returned.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedAuditError {
    /// Incremental-vs-oracle disagreements.
    pub divergences: Vec<Divergence>,
    /// Human-readable cross-shard reconciliation failures (per-shard state
    /// not summing to the merged view within
    /// [`crate::backend::RECONCILE_TOLERANCE`]).
    pub reconcile: Vec<String>,
}

impl fmt::Display for ShardedAuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sharded audit failed: {} divergence(s), {} reconcile failure(s)",
            self.divergences.len(),
            self.reconcile.len()
        )?;
        for d in &self.divergences {
            writeln!(f, "  {d}")?;
        }
        for r in &self.reconcile {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// [`audit`], parallelized and shard-aware: the reference oracle is rebuilt
/// by `workers` threads over id-partitioned tenant subsets
/// ([`Oracle::rebuild_sharded`]) and compared against the incremental
/// state, then the placement's per-shard derived state is reconciled
/// against its merged view. The verdict is the same as [`audit`]'s — both
/// sides sum identical replica terms, differing only by float association,
/// which stays far inside [`AUDIT_TOLERANCE`].
///
/// # Errors
///
/// Returns a [`ShardedAuditError`] carrying every divergence and every
/// reconciliation failure.
pub fn audit_sharded(
    placement: &Placement,
    workers: usize,
) -> std::result::Result<(), ShardedAuditError> {
    let oracle = Oracle::rebuild_sharded(placement, workers);
    let divergences = compare(placement, &oracle);
    let reconcile = placement.reconcile_shards();
    if divergences.is_empty() && reconcile.is_empty() {
        Ok(())
    } else {
        Err(ShardedAuditError { divergences, reconcile })
    }
}

/// Hand-formatted JSON dump of `placement` in the
/// [`crate::PlacementDump`] wire format, suitable for `cubefit check
/// --audit` replay.
///
/// Formatted without serde so the audit path works in contexts where the
/// `serde` feature is disabled; floats use Rust's shortest round-trip
/// representation, which is valid JSON.
#[must_use]
pub fn replay_json(placement: &Placement) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"gamma\":{},\"servers\":{},\"tenants\":[",
        placement.gamma(),
        placement.created_bins()
    );
    for (i, (tenant, load, bins)) in placement.tenants().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"tenant\":{},\"load\":{:?},\"servers\":[", tenant.get(), load);
        for (j, bin) in bins.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", bin.index());
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// A [`Consolidator`] wrapper that audits the wrapped algorithm's placement
/// against the [`Oracle`] after every `stride`-th accepted tenant.
///
/// On divergence it panics with the divergence list *and* a replayable
/// [`replay_json`] dump of the exact placement prefix, so a failing fuzz
/// run can be replayed offline with `cubefit check --audit`.
///
/// ```
/// use cubefit_core::oracle::AuditedConsolidator;
/// use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let config = CubeFitConfig::builder().replication(2).classes(5).build()?;
/// let mut audited = AuditedConsolidator::new(CubeFit::new(config));
/// audited.place(Tenant::with_load(Load::new(0.4)?))?; // audited in place
/// assert_eq!(audited.name(), "cubefit");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AuditedConsolidator<A> {
    inner: A,
    stride: usize,
    placed: usize,
}

impl<A: Consolidator> AuditedConsolidator<A> {
    /// Wraps `inner`, auditing after every placement.
    #[must_use]
    pub fn new(inner: A) -> Self {
        Self::with_stride(inner, 1)
    }

    /// Wraps `inner`, auditing after every `stride`-th placement (clamped
    /// to at least 1). Larger strides trade detection granularity for
    /// speed on long streams.
    #[must_use]
    pub fn with_stride(inner: A, stride: usize) -> Self {
        AuditedConsolidator { inner, stride: stride.max(1), placed: 0 }
    }

    /// The wrapped algorithm.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the audited algorithm.
    #[must_use]
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Number of audits performed so far.
    #[must_use]
    pub fn audits(&self) -> usize {
        self.placed / self.stride
    }

    /// Audits the current placement, panicking with a replayable dump on
    /// divergence. `context` names the operation that just ran.
    fn audit_or_panic(&self, context: &str) {
        if let Err(divergences) = audit(self.inner.placement()) {
            let mut report =
                format!("placement audit failed for `{}` after {context}:\n", self.inner.name());
            for d in &divergences {
                report.push_str("  ");
                report.push_str(&d.to_string());
                report.push('\n');
            }
            report.push_str("replay with `cubefit check --audit` on:\n");
            report.push_str(&replay_json(self.inner.placement()));
            panic!("{report}");
        }
    }
}

impl<A: Consolidator> Consolidator for AuditedConsolidator<A> {
    /// Places the tenant via the wrapped algorithm, then audits.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors untouched.
    ///
    /// # Panics
    ///
    /// Panics with the divergence list and a replayable dump if the
    /// incremental bookkeeping disagrees with the oracle.
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        let id = tenant.id();
        let outcome = self.inner.place(tenant)?;
        self.placed += 1;
        if self.placed.is_multiple_of(self.stride) {
            self.audit_or_panic(&format!("tenant {} (placement #{})", id.get(), self.placed));
        }
        Ok(outcome)
    }

    /// Removes via the wrapped algorithm, then audits unconditionally
    /// (departures are rare relative to placements, and decrement paths
    /// are where incremental bookkeeping is most fragile).
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors untouched.
    ///
    /// # Panics
    ///
    /// Panics with the divergence list and a replayable dump if the
    /// incremental bookkeeping disagrees with the oracle after removal.
    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        let outcome = self.inner.remove(tenant)?;
        self.audit_or_panic(&format!("removal of tenant {}", tenant.get()));
        Ok(outcome)
    }

    /// Recovers via the wrapped algorithm, then audits unconditionally and
    /// checks the recovery postcondition that every failed bin ends empty.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors untouched.
    ///
    /// # Panics
    ///
    /// Panics on oracle divergence, or if a failed bin still carries load
    /// after recovery returned.
    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        let report = self.inner.recover(failed)?;
        self.audit_or_panic(&format!("recovery from {} failed bin(s)", failed.len()));
        for &bin in failed {
            let level = self.inner.placement().level(bin);
            assert!(
                level == 0.0,
                "recovery for `{}` left failed bin {bin} at level {level}",
                self.inner.name()
            );
        }
        Ok(report)
    }

    /// Applies the load re-estimate via the wrapped algorithm, then audits
    /// unconditionally — drift steps re-weight the shared-load matrix along
    /// both add and sub paths, exactly where incremental bookkeeping is
    /// most fragile, so every drift step is replayed against the oracle.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors untouched.
    ///
    /// # Panics
    ///
    /// Panics with the divergence list and a replayable dump if the
    /// incremental bookkeeping disagrees with the oracle after the update.
    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        let outcome = self.inner.update_load(tenant, new_load)?;
        self.audit_or_panic(&format!("load update of tenant {} to {new_load}", tenant.get()));
        Ok(outcome)
    }

    /// Migrates via the wrapped algorithm, then audits unconditionally —
    /// every planned defrag move is replayed against the oracle, so a
    /// migration that corrupts a derived index is caught at the exact step
    /// that applied it.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped algorithm's errors untouched.
    ///
    /// # Panics
    ///
    /// Panics with the divergence list and a replayable dump if the
    /// incremental bookkeeping disagrees with the oracle after the move.
    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        self.inner.migrate(tenant, from, to)?;
        self.audit_or_panic(&format!("migration of tenant {} from {from} to {to}", tenant.get()));
        Ok(())
    }

    /// Re-shards the wrapped algorithm's placement. Batch mutations keep
    /// the trait's default per-op loops on purpose: each op goes through
    /// the audited [`Consolidator::place`]/[`Consolidator::remove`]/
    /// [`Consolidator::update_load`] above, so a divergence is pinned to
    /// the exact op that introduced it instead of to a whole batch.
    fn set_shards(&mut self, shards: usize) {
        self.inner.set_shards(shards);
    }

    fn clone_box(&self) -> Box<dyn Consolidator> {
        Box::new(AuditedConsolidator {
            inner: self.inner.clone_box(),
            stride: self.stride,
            placed: self.placed,
        })
    }

    fn placement(&self) -> &Placement {
        self.inner.placement()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn set_recorder(&mut self, recorder: cubefit_telemetry::Recorder) {
        self.inner.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Load;
    use crate::tenant::TenantId;

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    fn sample() -> Placement {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1]]).unwrap();
        p.place_tenant(&tenant(1, 0.3), &[b[0], b[2]]).unwrap();
        p.place_tenant(&tenant(2, 0.5), &[b[2], b[3]]).unwrap();
        p
    }

    #[test]
    fn oracle_matches_incremental_on_sample() {
        let p = sample();
        let oracle = Oracle::rebuild(&p);
        assert_eq!(oracle.gamma(), 2);
        assert_eq!(oracle.bins(), 4);
        for bin in p.bins() {
            assert!((oracle.level(bin.id()) - bin.level()).abs() < 1e-12);
            assert!((oracle.worst_failover(bin.id()) - p.worst_failover(bin.id())).abs() < 1e-12);
        }
        assert!((oracle.shared_load(BinId::new(0), BinId::new(1)) - 0.3).abs() < 1e-12);
        assert_eq!(oracle.is_robust(), p.is_robust());
        assert!(audit(&p).is_ok());
    }

    #[test]
    fn oracle_empty_placement() {
        let p = Placement::new(3);
        let oracle = Oracle::rebuild(&p);
        assert!(oracle.is_robust());
        assert_eq!(oracle.worst_margin(), 1.0);
        assert!(audit(&p).is_ok());
    }

    #[test]
    fn oracle_top_shared_sum_depths() {
        let mut p = Placement::new(3);
        let b: Vec<BinId> = (0..5).map(|_| p.open_bin(None)).collect();
        p.place_tenant(&tenant(0, 0.6), &[b[0], b[1], b[2]]).unwrap();
        p.place_tenant(&tenant(1, 0.3), &[b[0], b[3], b[4]]).unwrap();
        let oracle = Oracle::rebuild(&p);
        // Rows of bin 0: 0.2 (b1), 0.2 (b2), 0.1 (b3), 0.1 (b4).
        assert!((oracle.top_shared_sum(b[0], 1) - 0.2).abs() < 1e-12);
        assert!((oracle.top_shared_sum(b[0], 2) - 0.4).abs() < 1e-12);
        assert!((oracle.worst_failover(b[0]) - 0.4).abs() < 1e-12);
        assert!((oracle.top_shared_sum(b[0], 10) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sharded_rebuild_matches_sequential_rebuild() {
        let mut p = Placement::new(2);
        let b: Vec<BinId> = (0..20).map(|_| p.open_bin(None)).collect();
        let mut state = 7u64;
        for id in 0..200u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = (((state >> 11) as f64 / (1u64 << 53) as f64) * 0.05).max(1e-6);
            let x = (state % 20) as usize;
            let y = (x + 1 + (state >> 7) as usize % 19) % 20;
            p.place_tenant(&tenant(id, load), &[b[x], b[y]]).unwrap();
        }
        let sequential = Oracle::rebuild(&p);
        for workers in [1, 2, 4, 8] {
            let sharded = Oracle::rebuild_sharded(&p, workers);
            for bin in p.bins() {
                let id = bin.id();
                assert!((sharded.level(id) - sequential.level(id)).abs() < AUDIT_TOLERANCE);
                assert!(
                    (sharded.worst_failover(id) - sequential.worst_failover(id)).abs()
                        < AUDIT_TOLERANCE
                );
                for (peer, value) in p.shared_peers(id) {
                    assert!((sharded.shared_load(id, peer) - value).abs() < AUDIT_TOLERANCE);
                }
            }
            assert_eq!(sharded.is_robust(), sequential.is_robust());
        }
    }

    #[test]
    fn audit_sharded_passes_on_sharded_and_single_backends() {
        for shards in [1, 4] {
            let mut p = Placement::with_shards(2, shards);
            let b: Vec<BinId> = (0..4).map(|_| p.open_bin(None)).collect();
            p.place_tenant(&tenant(0, 0.6), &[b[0], b[1]]).unwrap();
            p.place_tenant(&tenant(1, 0.3), &[b[0], b[2]]).unwrap();
            p.place_tenant(&tenant(2, 0.5), &[b[2], b[3]]).unwrap();
            assert_eq!(p.shard_count(), shards);
            audit_sharded(&p, 4).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn audit_sharded_reports_unsound_state() {
        // Same corruption as `oracle_detects_unsound_robustness`, through
        // the parallel path: the incremental state is poked via update_load
        // deltas the tenant list does not explain.
        let mut p = sample();
        p.update_load(TenantId::new(0), 0.9).unwrap();
        let pristine = sample();
        let oracle = Oracle::rebuild_sharded(&pristine, 2);
        // Compare the drifted placement against the un-drifted oracle.
        let divergences = compare(&p, &oracle);
        assert!(!divergences.is_empty());
        let err = ShardedAuditError { divergences, reconcile: pristine.reconcile_shards() };
        assert!(err.to_string().contains("divergence"));
    }

    #[test]
    fn oracle_detects_unsound_robustness() {
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        p.place_tenant(&tenant(0, 0.9), &[a, b]).unwrap();
        p.place_tenant(&tenant(1, 0.9), &[a, b]).unwrap();
        let oracle = Oracle::rebuild(&p);
        assert!(!oracle.is_robust());
        assert!(oracle.worst_margin() < 0.0);
        // The incremental side agrees here, so the audit still passes.
        assert!(audit(&p).is_ok());
    }

    #[test]
    fn replay_json_roundtrips_through_dump() {
        let p = sample();
        let json = replay_json(&p);
        #[cfg(feature = "serde")]
        {
            let dump: crate::PlacementDump = serde_json::from_str(&json).unwrap();
            let rebuilt = dump.to_placement().unwrap();
            assert_eq!(rebuilt.tenant_count(), p.tenant_count());
            assert_eq!(rebuilt.created_bins(), p.created_bins());
            for bin in p.bins() {
                assert!((rebuilt.level(bin.id()) - bin.level()).abs() < 1e-12);
            }
        }
        assert!(json.starts_with("{\"gamma\":2,\"servers\":4"));
    }

    #[derive(Clone)]
    struct FreshBins(Placement);
    impl Consolidator for FreshBins {
        fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
            let gamma = self.0.gamma();
            let bins: Vec<BinId> = (0..gamma).map(|_| self.0.open_bin(None)).collect();
            self.0.place_tenant(&tenant, &bins)?;
            Ok(PlacementOutcome {
                tenant: tenant.id(),
                opened: bins.len(),
                bins,
                stage: crate::algorithm::PlacementStage::Direct,
            })
        }
        fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
            let (load, bins) = self.0.remove_tenant(tenant)?;
            Ok(RemovalOutcome { tenant, load, bins })
        }
        fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
            crate::recovery::recover_replicas(
                &mut self.0,
                failed,
                |p, t, from, _| {
                    crate::recovery::pick_target(
                        p,
                        t,
                        from,
                        failed,
                        (0..p.created_bins()).map(BinId::new),
                    )
                },
                |_, _, _, _, _| {},
            )
        }
        fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
            let (old_load, bins) = self.0.update_load(tenant, new_load)?;
            Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
        }
        fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
            self.0.move_replica(tenant, from, to)
        }
        fn clone_box(&self) -> Box<dyn Consolidator> {
            Box::new(self.clone())
        }
        fn placement(&self) -> &Placement {
            &self.0
        }
        fn name(&self) -> &'static str {
            "fresh-bins"
        }
    }

    #[test]
    fn audited_wrapper_is_transparent() {
        let mut audited = AuditedConsolidator::with_stride(FreshBins(Placement::new(2)), 2);
        for id in 0..5u64 {
            let outcome = audited.place(tenant(id, 0.4)).unwrap();
            assert_eq!(outcome.bins.len(), 2);
        }
        assert_eq!(audited.audits(), 2);
        assert_eq!(audited.gamma(), 2);
        assert_eq!(audited.inner().placement().tenant_count(), 5);
        assert_eq!(audited.into_inner().0.tenant_count(), 5);
    }

    #[test]
    fn audited_wrapper_replays_removal_and_recovery() {
        let mut audited = AuditedConsolidator::new(FreshBins(Placement::new(2)));
        let a = audited.place(tenant(0, 0.5)).unwrap();
        let b = audited.place(tenant(1, 0.7)).unwrap();
        audited.place(tenant(2, 0.3)).unwrap();
        let removed = audited.remove(TenantId::new(2)).unwrap();
        assert!((removed.load - 0.3).abs() < 1e-12);
        assert!(audited.remove(TenantId::new(2)).is_err());
        let report = audited.recover(&[a.bins[0], b.bins[1]]).unwrap();
        assert_eq!(report.replicas_migrated, 2);
        assert_eq!(audited.placement().level(a.bins[0]), 0.0);
        assert_eq!(audited.placement().level(b.bins[1]), 0.0);
        assert!(audited.placement().is_robust());
        // A fork through the audited wrapper remains independently audited.
        let mut fork = audited.clone_box();
        fork.remove(TenantId::new(0)).unwrap();
        assert_eq!(fork.placement().tenant_count(), 1);
        assert_eq!(audited.placement().tenant_count(), 2);
    }

    #[test]
    fn audited_wrapper_replays_load_updates() {
        let mut audited = AuditedConsolidator::new(FreshBins(Placement::new(2)));
        let a = audited.place(tenant(0, 0.5)).unwrap();
        audited.place(tenant(1, 0.3)).unwrap();
        let outcome = audited.update_load(TenantId::new(0), 0.9).unwrap();
        assert!((outcome.old_load - 0.5).abs() < 1e-12);
        assert_eq!(outcome.bins, a.bins);
        assert!((audited.placement().level(a.bins[0]) - 0.45).abs() < 1e-12);
        // Downward drift audits too.
        audited.update_load(TenantId::new(0), 0.1).unwrap();
        assert!((audited.placement().level(a.bins[0]) - 0.05).abs() < 1e-12);
        // Invalid updates propagate as errors without tripping the audit.
        assert!(audited.update_load(TenantId::new(0), 0.0).is_err());
        assert!(audited.update_load(TenantId::new(9), 0.5).is_err());
        assert!(audit(audited.placement()).is_ok());
    }

    #[test]
    fn duplicate_tenant_error_propagates_unaudited() {
        let mut p = Placement::new(2);
        let bins: Vec<BinId> = (0..2).map(|_| p.open_bin(None)).collect();
        #[derive(Clone)]
        struct Fixed(Placement, Vec<BinId>);
        impl Consolidator for Fixed {
            fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
                self.0.place_tenant(&tenant, &self.1)?;
                Ok(PlacementOutcome {
                    tenant: tenant.id(),
                    bins: self.1.clone(),
                    opened: 0,
                    stage: crate::algorithm::PlacementStage::Direct,
                })
            }
            fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
                let (load, bins) = self.0.remove_tenant(tenant)?;
                Ok(RemovalOutcome { tenant, load, bins })
            }
            fn recover(&mut self, _failed: &[BinId]) -> Result<RecoveryReport> {
                Ok(RecoveryReport::default())
            }
            fn update_load(
                &mut self,
                tenant: TenantId,
                new_load: f64,
            ) -> Result<LoadUpdateOutcome> {
                let (old_load, bins) = self.0.update_load(tenant, new_load)?;
                Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
            }
            fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
                self.0.move_replica(tenant, from, to)
            }
            fn clone_box(&self) -> Box<dyn Consolidator> {
                Box::new(self.clone())
            }
            fn placement(&self) -> &Placement {
                &self.0
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let mut audited = AuditedConsolidator::new(Fixed(p, bins));
        audited.place(tenant(0, 0.2)).unwrap();
        assert!(audited.place(tenant(0, 0.2)).is_err());
        assert_eq!(audited.audits(), 1);
    }
}
