//! The CubeFit consolidation algorithm (paper §III, Algorithm 1).

use crate::algorithm::{
    Consolidator, LoadUpdateOutcome, PlacementOutcome, PlacementStage, RemovalOutcome,
};
use crate::bin::BinId;
use crate::class::Classifier;
use crate::config::CubeFitConfig;
use crate::cube::{ClassGroups, SlotTarget};
use crate::error::{Error, Result};
use crate::mfit::{self, MatureSet};
use crate::multireplica::MultiReplicaState;
use crate::placement::Placement;
use crate::recovery::{self, RecoveryReport};
use crate::tenant::{Tenant, TenantId};
use cubefit_telemetry::{Counter, Recorder, TraceEvent};
use std::collections::{BTreeMap, HashMap};

/// Online robust consolidator that places replicas of almost-equal size into
/// the same bins via cube addressing, and reuses mature-bin leftover space
/// via the m-fit predicate.
///
/// For every tenant, CubeFit:
///
/// 1. (*stage 1*) tries to Best-Fit all `γ` replicas into **mature** bins
///    that *m-fit* them — bins whose payload slots are full but whose spare
///    space can absorb the replica while preserving the failover reserve;
/// 2. (*stage 2*) otherwise assigns the replicas to the next cube cell of
///    the tenant's size class, so that no two bins ever share replicas of
///    more than one tenant (Lemma 1), which bounds failover load and yields
///    Theorem 1: no failure of up to `γ − 1` servers overloads any bin.
///
/// Tiny tenants (class `K`) are aggregated into multi-replicas first
/// (see [`crate::multireplica`]).
///
/// ```
/// use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant};
///
/// # fn main() -> Result<(), cubefit_core::Error> {
/// let mut cubefit = CubeFit::new(CubeFitConfig::builder().replication(3).classes(10).build()?);
/// for i in 0..100 {
///     let load = 0.01 + 0.009 * (i % 100) as f64;
///     cubefit.place(Tenant::with_load(Load::new(load)?))?;
/// }
/// // Robust against any two simultaneous server failures.
/// assert!(cubefit.placement().is_robust());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CubeFit {
    config: CubeFitConfig,
    classifier: Classifier,
    placement: Placement,
    /// Cube groups per class index (shared between regular replicas and
    /// multi-replicas of the tiny target class).
    groups: BTreeMap<usize, ClassGroups>,
    /// Stage-2 payload slots occupied, per bin.
    slots_filled: Vec<usize>,
    mature: MatureSet,
    multi: MultiReplicaState,
    /// Which path placed each live tenant, so a departure knows what to
    /// reclaim (cube tenants release their whole cell to the free list).
    placed_via: HashMap<TenantId, PlacedVia>,
    /// Reclaimed cube cells per class index: the `γ`-bin tuples departed
    /// stage-2 tenants vacated. A later tenant of the same class reuses a
    /// whole cell — inheriting the departed tenant's sharing structure, so
    /// Lemma 1's "no two bins share more than one tenant" survives reuse —
    /// after an explicit m-fit-style re-check, because stage-1 guests may
    /// have consumed the vacated space in the meantime.
    free_cells: BTreeMap<usize, Vec<Vec<BinId>>>,
    /// Whether a recovery has ever migrated replicas. Migration re-points a
    /// tenant's shared loads at bins outside its cube cell, which can merge
    /// two of a sibling's failover partners into one — so cube tuples are no
    /// longer robust *by construction* and every stage-2 assignment must
    /// pass the same predicate stage 1 uses (see [`CubeFit::place`]).
    cube_perturbed: bool,
    /// When `Some`, [`Consolidator::remove`]/[`Consolidator::update_load`]
    /// record the bins whose mature slack key changed instead of re-keying
    /// immediately — the batch fast path re-keys the deduplicated union
    /// once, after the placement backend leaves deferred mode. `None`
    /// outside batches (the per-op re-key path).
    deferred_rekey: Option<Vec<BinId>>,
    counters: CubeFitStats,
    instruments: Instruments,
}

/// How a live tenant was placed (what its departure must undo).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlacedVia {
    /// Stage 1: guest in mature-bin leftover space; nothing to reclaim
    /// beyond the load itself.
    MatureFit,
    /// Stage 2: owns a whole cube cell of this class.
    Cube(usize),
    /// Member of a (possibly sealed) multi-replica; the cell is shared
    /// with the other members, so no cell is reclaimed.
    Multi,
}

/// Telemetry handles resolved once at [`Consolidator::set_recorder`] time so
/// the hot path pays one branch per metric when telemetry is disabled.
#[derive(Debug, Clone, Default)]
struct Instruments {
    recorder: Recorder,
    stage1: Counter,
    stage2: Counter,
    tiny: Counter,
    mfit_hits: Counter,
    mfit_misses: Counter,
    mfit_candidates: Counter,
    bins_opened: Counter,
}

/// Counters describing how CubeFit placed its tenants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CubeFitStats {
    /// Tenants placed in stage 1 (mature-bin reuse).
    pub stage1_placements: usize,
    /// Tenants placed in stage 2 (cube slots).
    pub stage2_placements: usize,
    /// Tiny tenants placed via multi-replicas.
    pub tiny_placements: usize,
    /// Bins that have matured so far.
    pub mature_bins: usize,
    /// Multi-replicas sealed so far.
    pub sealed_multis: usize,
    /// Stage-2 placements that reused a cell reclaimed from a departed
    /// tenant instead of advancing the cube counter.
    pub cells_reused: usize,
}

impl CubeFit {
    /// Creates a CubeFit consolidator from a validated configuration.
    #[must_use]
    pub fn new(config: CubeFitConfig) -> Self {
        let (_, cap) = config.tiny_target();
        CubeFit {
            classifier: config.classifier(),
            placement: Placement::new(config.gamma()),
            groups: BTreeMap::new(),
            slots_filled: Vec::new(),
            mature: MatureSet::default(),
            multi: MultiReplicaState::new(cap),
            placed_via: HashMap::new(),
            free_cells: BTreeMap::new(),
            cube_perturbed: false,
            deferred_rekey: None,
            counters: CubeFitStats::default(),
            instruments: Instruments::default(),
            config,
        }
    }

    /// The configuration this instance runs with.
    #[must_use]
    pub fn config(&self) -> &CubeFitConfig {
        &self.config
    }

    /// Placement-path counters.
    #[must_use]
    pub fn stats(&self) -> CubeFitStats {
        CubeFitStats {
            mature_bins: self.mature.len(),
            sealed_multis: self.multi.sealed(),
            ..self.counters
        }
    }

    /// Places a tiny (class-`K`) tenant: stage-1 reuse of mature-bin
    /// leftover space when enabled (§V.A), else the multi-replica path.
    fn place_tiny(&mut self, tenant: &Tenant, size: f64) -> Result<PlacementOutcome> {
        if self.config.tiny_stage1() {
            let growth_hosts = self.multi.active_hosts();
            let scan = mfit::try_stage1(
                &self.placement,
                &self.mature,
                self.config.stage1_eligibility(),
                crate::class::ReplicaClass::new(self.config.classes()),
                size,
                self.config.gamma(),
                &growth_hosts,
                self.multi.headroom(),
                self.config.scan_limit(),
            );
            self.note_mfit(tenant, self.config.classes(), &scan);
            if let Some(bins) = scan.bins {
                self.commit(tenant, &bins)?;
                self.placed_via.insert(tenant.id(), PlacedVia::MatureFit);
                self.counters.stage1_placements += 1;
                self.instruments.stage1.inc();
                self.emit_placed(tenant, &bins, PlacementStage::MatureFit, 0);
                return Ok(PlacementOutcome {
                    tenant: tenant.id(),
                    bins,
                    opened: 0,
                    stage: PlacementStage::MatureFit,
                });
            }
        }
        let (target_class, _) = self.config.tiny_target();
        let gamma = self.config.gamma();
        if self.cube_perturbed && self.multi.needs_new(size) {
            // A fresh multi-replica grows in place up to its cap, so on a
            // perturbed cube its cell must afford the full cap up front.
            let targets = self.checked_cube_tuple(target_class, self.multi.cap());
            self.multi.open_with(targets);
        }
        // Multi-replicas draw slots from the same cube groups as regular
        // replicas of the target class, preserving Lemma 1 across both.
        let groups = self
            .groups
            .entry(target_class)
            .or_insert_with(|| ClassGroups::new(target_class, gamma));
        let decision = self.multi.assign(size, &mut self.placement, groups);
        let opened = decision
            .new_slots
            .as_ref()
            .map_or(0, |slots| slots.iter().filter(|t| t.opened).count());
        if let Some(targets) = &decision.new_slots {
            self.emit_slots(tenant, target_class, targets);
        }
        self.commit(tenant, &decision.bins)?;
        self.placed_via.insert(tenant.id(), PlacedVia::Multi);
        if let Some(targets) = &decision.new_slots {
            self.note_slots(targets);
        }
        self.counters.tiny_placements += 1;
        self.instruments.tiny.inc();
        self.emit_placed(tenant, &decision.bins, PlacementStage::MultiReplica, opened);
        Ok(PlacementOutcome {
            tenant: tenant.id(),
            bins: decision.bins,
            opened,
            stage: PlacementStage::MultiReplica,
        })
    }

    /// The robust slack of `bin`: the guest headroom the mature set keys
    /// by.
    fn slack(&self, bin: BinId) -> f64 {
        1.0 - self.placement.level(bin) - self.placement.worst_failover(bin)
    }

    /// Re-keys `bin`'s mature slack — immediately outside a batch, or by
    /// recording it for the single end-of-batch re-key pass (the slack
    /// queries the failover reserve, which is invalid while the backend is
    /// in deferred-maintenance mode). Equivalent either way: the mature set
    /// keys by the *final* slack value, and no stage-1 admission runs
    /// between batched ops.
    fn rekey(&mut self, bin: BinId) {
        if let Some(pending) = self.deferred_rekey.as_mut() {
            pending.push(bin);
        } else {
            self.mature.update_slack(bin, self.slack(bin));
        }
    }

    /// Runs `ops` between `begin_batch`/`end_batch` with slack re-keys
    /// deferred, then re-keys the deduplicated union of touched bins once.
    fn batched<T>(&mut self, ops: impl FnOnce(&mut Self) -> Result<Vec<T>>) -> Result<Vec<T>> {
        self.placement.begin_batch();
        self.deferred_rekey = Some(Vec::new());
        let result = ops(self);
        let mut pending = self.deferred_rekey.take().expect("batch mode set above");
        self.placement.end_batch();
        pending.sort_unstable();
        pending.dedup();
        for bin in pending {
            self.mature.update_slack(bin, self.slack(bin));
        }
        result
    }

    /// Commits a tenant to its bins, keeping the mature-set slack keys
    /// consistent (placement changes both the levels and the shared loads
    /// of exactly these bins).
    fn commit(&mut self, tenant: &Tenant, bins: &[BinId]) -> Result<()> {
        // Snapshot empty→non-empty transitions before placing: one
        // `BinOpened` event per bin that receives its first replica here,
        // so a trace's `BinOpened` count equals the servers a run reports.
        let newly_opened: Vec<(BinId, Option<usize>)> = if self.instruments.recorder.is_enabled() {
            bins.iter()
                .filter(|&&bin| self.placement.bin(bin).is_empty())
                .map(|&bin| (bin, self.placement.bin(bin).class().map(|c| c.index())))
                .collect()
        } else {
            Vec::new()
        };
        self.placement.place_tenant(tenant, bins)?;
        for &bin in bins {
            self.mature.update_slack(bin, self.slack(bin));
        }
        if !newly_opened.is_empty() {
            self.instruments.bins_opened.add(newly_opened.len() as u64);
            let total = self.placement.open_bins();
            let pending = newly_opened.len();
            for (i, (bin, class)) in newly_opened.into_iter().enumerate() {
                self.instruments.recorder.emit(|| TraceEvent::BinOpened {
                    bin: bin.index(),
                    class,
                    total_open: total - (pending - 1 - i),
                });
            }
        }
        Ok(())
    }

    /// Records the outcome of one stage-1 m-fit scan.
    fn note_mfit(&self, tenant: &Tenant, class: usize, scan: &mfit::Stage1Scan) {
        let hit = scan.bins.is_some();
        if hit {
            self.instruments.mfit_hits.inc();
        } else {
            self.instruments.mfit_misses.inc();
        }
        self.instruments.mfit_candidates.add(scan.scanned as u64);
        self.instruments.recorder.emit(|| TraceEvent::MfitOutcome {
            tenant: tenant.id().get(),
            class,
            candidates_scanned: scan.scanned,
            hit,
        });
    }

    /// Emits the terminal `Placed` event for a tenant.
    fn emit_placed(&self, tenant: &Tenant, bins: &[BinId], stage: PlacementStage, opened: usize) {
        self.instruments.recorder.emit(|| TraceEvent::Placed {
            tenant: tenant.id().get(),
            bins: bins.iter().map(|b| b.index()).collect(),
            stage: format!("{stage:?}"),
            opened,
        });
    }

    /// Emits one `SlotAssigned` event per stage-2 cube slot.
    fn emit_slots(&self, tenant: &Tenant, class: usize, targets: &[SlotTarget]) {
        for (level, target) in targets.iter().enumerate() {
            self.instruments.recorder.emit(|| TraceEvent::SlotAssigned {
                tenant: tenant.id().get(),
                class,
                level,
                bin: target.bin.index(),
                slot: target.slot,
            });
        }
    }

    /// Records stage-2 slot occupancy and promotes bins whose payload slots
    /// are now all filled to the mature set. Already-mature bins (possible
    /// once departures decrement and cell reuse re-increments the counts)
    /// are left alone so their slack key is not duplicated.
    fn note_slots(&mut self, targets: &[SlotTarget]) {
        for target in targets {
            let index = target.bin.index();
            if index >= self.slots_filled.len() {
                self.slots_filled.resize(index + 1, 0);
            }
            self.slots_filled[index] += 1;
            let class =
                self.placement.bin(target.bin).class().expect("stage-2 bins are always classed");
            if self.slots_filled[index] == self.classifier.payload_slots(class)
                && !self.mature.contains(target.bin)
            {
                self.mature.insert(target.bin, self.slack(target.bin));
            }
        }
    }

    /// The first reclaimed cell of class `tau` whose every bin still
    /// m-fits a replica of `size` (stage-1 guests may have eaten the
    /// vacated space). Infeasible cells stay in the list — a later, lighter
    /// tenant or a departure can make them viable again.
    fn take_free_cell(&mut self, tau: usize, size: f64) -> Option<Vec<BinId>> {
        let growth_hosts = self.multi.active_hosts();
        let headroom = self.multi.headroom();
        let placement = &self.placement;
        let cells = self.free_cells.get_mut(&tau)?;
        let pos = cells.iter().position(|cell| {
            cell.iter().enumerate().all(|(i, &bin)| {
                let siblings: Vec<BinId> =
                    cell.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &b)| b).collect();
                mfit::m_fits_with_growth(placement, bin, size, &siblings, &growth_hosts, headroom)
            })
        })?;
        Some(cells.swap_remove(pos))
    }

    /// Re-occupies the slots of a reused cell, restoring maturity to bins
    /// whose payload slots are full again.
    fn note_refill(&mut self, bins: &[BinId]) {
        for &bin in bins {
            let index = bin.index();
            if index >= self.slots_filled.len() {
                self.slots_filled.resize(index + 1, 0);
            }
            self.slots_filled[index] += 1;
            if let Some(class) = self.placement.bin(bin).class() {
                if self.slots_filled[index] == self.classifier.payload_slots(class)
                    && !self.mature.contains(bin)
                {
                    self.mature.insert(bin, self.slack(bin));
                }
            }
        }
    }

    /// Whether every bin of a prospective cube tuple m-fits a replica of
    /// `size` alongside the rest of the tuple — the check cell reuse
    /// already performs, applied to freshly assigned tuples once recovery
    /// has voided the cube's by-construction guarantee.
    fn tuple_feasible(&self, bins: &[BinId], size: f64) -> bool {
        let growth_hosts = self.multi.active_hosts();
        let headroom = self.multi.headroom();
        bins.iter().enumerate().all(|(i, &bin)| {
            let siblings: Vec<BinId> =
                bins.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &b)| b).collect();
            mfit::m_fits_with_growth(&self.placement, bin, size, &siblings, &growth_hosts, headroom)
        })
    }

    /// Draws the next class-`tau` cube tuple that robustly fits a replica
    /// of `size`, used instead of a bare `groups.assign` once recovery has
    /// perturbed the cube. Infeasible tuples are banked as reclaimed cells
    /// (a departure or a lighter tenant can revive them) and the cube
    /// advances; if no tuple passes within the scan limit the caller gets a
    /// dedicated tuple of fresh bins, which trivially satisfies the
    /// reserve.
    fn checked_cube_tuple(&mut self, tau: usize, size: f64) -> Vec<SlotTarget> {
        let gamma = self.config.gamma();
        for _ in 0..self.config.scan_limit().max(1) {
            let groups = self.groups.entry(tau).or_insert_with(|| ClassGroups::new(tau, gamma));
            let targets = groups.assign(&mut self.placement);
            let bins: Vec<BinId> = targets.iter().map(|t| t.bin).collect();
            if self.tuple_feasible(&bins, size) {
                return targets;
            }
            self.free_cells.entry(tau).or_default().push(bins);
        }
        (0..gamma)
            .map(|_| SlotTarget {
                bin: self.placement.open_bin(Some(crate::class::ReplicaClass::new(tau))),
                slot: 0,
                opened: true,
            })
            .collect()
    }
}

impl Consolidator for CubeFit {
    fn place(&mut self, tenant: Tenant) -> Result<PlacementOutcome> {
        if self.placement.tenant_bins(tenant.id()).is_some() {
            return Err(Error::DuplicateTenant { tenant: tenant.id() });
        }
        let gamma = self.config.gamma();
        let size = tenant.replica_size(gamma);
        let class = self.classifier.classify(size);
        let seq = self.placement.tenant_count() as u64;
        self.instruments.recorder.emit(|| TraceEvent::TenantArrived {
            tenant: tenant.id().get(),
            load: tenant.load().get(),
            seq,
        });

        if class.index() == self.config.classes() {
            return self.place_tiny(&tenant, size);
        }

        // Stage 1: Best Fit into mature bins, if every replica m-fits. The
        // active multi-replica's remaining growth is charged to its host
        // bins so a guest admitted now still fits once that growth lands.
        // Class-1 replicas have no strictly-smaller class to reuse, so the
        // scan is skipped outright under the default eligibility rule.
        let stage1_possible = class.index() > 1
            || self.config.stage1_eligibility()
                != crate::config::Stage1Eligibility::SmallerClassBins;
        if stage1_possible {
            let growth_hosts = self.multi.active_hosts();
            let scan = mfit::try_stage1(
                &self.placement,
                &self.mature,
                self.config.stage1_eligibility(),
                class,
                size,
                gamma,
                &growth_hosts,
                self.multi.headroom(),
                self.config.scan_limit(),
            );
            self.note_mfit(&tenant, class.index(), &scan);
            if let Some(bins) = scan.bins {
                self.commit(&tenant, &bins)?;
                self.counters.stage1_placements += 1;
                self.instruments.stage1.inc();
                self.emit_placed(&tenant, &bins, PlacementStage::MatureFit, 0);
                return Ok(PlacementOutcome {
                    tenant: tenant.id(),
                    bins,
                    opened: 0,
                    stage: PlacementStage::MatureFit,
                });
            }
        }

        // Stage 2: cube-addressed slots of the tenant's class — reusing a
        // reclaimed cell of the class when one still robustly fits. The
        // reused tuple reproduces the departed tenant's pairwise sharing
        // structure, so Lemma 1 is preserved without advancing the cube.
        let tau = class.index();
        if let Some(bins) = self.take_free_cell(tau, size) {
            let opened = bins.iter().filter(|&&b| self.placement.bin(b).is_empty()).count();
            self.commit(&tenant, &bins)?;
            self.note_refill(&bins);
            self.placed_via.insert(tenant.id(), PlacedVia::Cube(tau));
            self.counters.stage2_placements += 1;
            self.counters.cells_reused += 1;
            self.instruments.stage2.inc();
            self.emit_placed(&tenant, &bins, PlacementStage::Cube, opened);
            return Ok(PlacementOutcome {
                tenant: tenant.id(),
                bins,
                opened,
                stage: PlacementStage::Cube,
            });
        }
        // Until a recovery migrates replicas, cube tuples are robust by
        // construction (Lemma 1) and the next tuple is taken as-is; after
        // one, each tuple must pass the m-fit predicate first.
        let targets = if self.cube_perturbed {
            self.checked_cube_tuple(tau, size)
        } else {
            let groups = self.groups.entry(tau).or_insert_with(|| ClassGroups::new(tau, gamma));
            groups.assign(&mut self.placement)
        };
        let bins: Vec<BinId> = targets.iter().map(|t| t.bin).collect();
        let opened = targets.iter().filter(|t| t.opened).count();
        self.emit_slots(&tenant, tau, &targets);
        self.commit(&tenant, &bins)?;
        self.note_slots(&targets);
        self.placed_via.insert(tenant.id(), PlacedVia::Cube(tau));
        self.counters.stage2_placements += 1;
        self.instruments.stage2.inc();
        self.emit_placed(&tenant, &bins, PlacementStage::Cube, opened);
        Ok(PlacementOutcome { tenant: tenant.id(), bins, opened, stage: PlacementStage::Cube })
    }

    fn remove(&mut self, tenant: TenantId) -> Result<RemovalOutcome> {
        let (load, bins) = self.placement.remove_tenant(tenant)?;
        let via = self.placed_via.remove(&tenant).unwrap_or(PlacedVia::MatureFit);
        // Removal shrinks levels and shared loads of exactly these bins.
        for &bin in &bins {
            self.rekey(bin);
        }
        if let PlacedVia::Cube(tau) = via {
            // The vacated cell (the tenant's bins at departure time, which
            // after migrations may differ from the original cube tuple —
            // reuse re-checks feasibility either way) becomes available to
            // future same-class tenants. Slot counts drop with it; a bin
            // whose count falls below payload stays in the mature set — its
            // slack key already reflects the freed space, and every stage-1
            // admission is predicate-checked.
            for &bin in &bins {
                let index = bin.index();
                if index < self.slots_filled.len() {
                    self.slots_filled[index] = self.slots_filled[index].saturating_sub(1);
                }
            }
            self.free_cells.entry(tau).or_default().push(bins.clone());
        }
        // Departed multi members keep their reservation in the active
        // multi-replica's size on purpose: the cap-based growth accounting
        // stays an upper bound, which only errs toward extra reserve.
        self.instruments
            .recorder
            .emit(|| TraceEvent::TenantDeparted { tenant: tenant.get(), load });
        Ok(RemovalOutcome { tenant, load, bins })
    }

    fn update_load(&mut self, tenant: TenantId, new_load: f64) -> Result<LoadUpdateOutcome> {
        let (old_load, bins) = self.placement.update_load(tenant, new_load)?;
        // The drift changes exactly these bins' levels and the shared loads
        // among them; their mature slack keys must follow.
        for &bin in &bins {
            self.rekey(bin);
        }
        if new_load > old_load {
            // Upward drift inflates replica sizes beyond what the cube's
            // by-construction feasibility priced in: predicate-check every
            // future cube tuple and stop the active multi-replica's growth.
            // Downward drift only adds slack, so the fast path survives it.
            self.cube_perturbed = true;
            self.multi.seal_active();
        }
        Ok(LoadUpdateOutcome { tenant, old_load, new_load, bins })
    }

    fn place_batch(&mut self, tenants: Vec<Tenant>) -> Result<Vec<PlacementOutcome>> {
        // Placement decisions query the failover reserve per tenant, so the
        // loop stays sequential (identical decisions); the batch only
        // amortizes the tenant-table growth.
        self.placement.reserve_tenants(tenants.len());
        tenants.into_iter().map(|tenant| self.place(tenant)).collect()
    }

    fn remove_batch(&mut self, tenants: &[TenantId]) -> Result<Vec<RemovalOutcome>> {
        // Removals never query the reserve, so the whole batch runs in the
        // backend's deferred-maintenance mode with one slack re-key per
        // touched bin at the end.
        self.batched(|this| tenants.iter().map(|tenant| this.remove(*tenant)).collect())
    }

    fn update_load_batch(&mut self, updates: &[(TenantId, f64)]) -> Result<Vec<LoadUpdateOutcome>> {
        self.batched(|this| {
            updates.iter().map(|(tenant, load)| this.update_load(*tenant, *load)).collect()
        })
    }

    fn set_shards(&mut self, shards: usize) {
        self.placement.set_shards(shards);
    }

    fn recover(&mut self, failed: &[BinId]) -> Result<RecoveryReport> {
        let orphan_list = recovery::orphans(&self.placement, failed);
        let mut report = RecoveryReport::default();
        let mut affected: Vec<TenantId> = Vec::new();
        let gamma = self.config.gamma() as f64;
        for (tenant, from) in orphan_list {
            if !affected.contains(&tenant) {
                affected.push(tenant);
            }
            let load = self.placement.tenant_load(tenant).expect("orphaned tenants are placed");
            let replica = load / gamma;
            // Re-home through the stage-1 host set: mature bins, tightest
            // feasible first, skipping the active multi-replica's hosts
            // (whose pending growth the move predicate does not price in).
            let growth_hosts = self.multi.active_hosts();
            let target = recovery::pick_target(
                &self.placement,
                tenant,
                from,
                failed,
                self.mature
                    .iter_fitting(replica)
                    .filter(|bin| !growth_hosts.contains(bin))
                    .take(self.config.scan_limit()),
            );
            let to = match target {
                Some(bin) => bin,
                None => {
                    report.bins_opened += 1;
                    self.placement.open_bin(None)
                }
            };
            self.placement.move_replica(tenant, from, to)?;
            report.replicas_migrated += 1;
            report.moved_load += replica;
            // The move changes the source's and target's levels plus the
            // shared loads of every sibling; re-key them all.
            self.mature.update_slack(from, self.slack(from));
            let bins: Vec<BinId> =
                self.placement.tenant_bins(tenant).expect("still placed").to_vec();
            for bin in bins {
                self.mature.update_slack(bin, self.slack(bin));
            }
            self.instruments.recorder.emit(|| TraceEvent::ReplicaMigrated {
                tenant: tenant.get(),
                from: from.index(),
                to: to.index(),
                load: replica,
            });
        }
        if report.replicas_migrated > 0 {
            // The moves above re-pointed shared loads outside cube cells:
            // stage 2 must predicate-check every tuple from now on, and the
            // active multi-replica — whose future growth was priced against
            // the pre-failure sharing structure — stops growing.
            self.cube_perturbed = true;
            self.multi.seal_active();
        }
        report.tenants_affected = affected.len();
        Ok(report)
    }

    fn migrate(&mut self, tenant: TenantId, from: BinId, to: BinId) -> Result<()> {
        let gamma = self.config.gamma() as f64;
        let load = self.placement.tenant_load(tenant).ok_or(Error::UnknownTenant { tenant })?;
        let replica = load / gamma;
        self.placement.move_replica(tenant, from, to)?;
        // Same re-key footprint as a recovery move: the source's and
        // target's levels change plus the shared loads of every sibling.
        self.mature.update_slack(from, self.slack(from));
        let bins: Vec<BinId> = self.placement.tenant_bins(tenant).expect("still placed").to_vec();
        for bin in bins {
            self.mature.update_slack(bin, self.slack(bin));
        }
        self.instruments.recorder.emit(|| TraceEvent::ReplicaMigrated {
            tenant: tenant.get(),
            from: from.index(),
            to: to.index(),
            load: replica,
        });
        // A planned migration re-points shared loads outside cube cells
        // exactly like a recovery move does, so the same guard applies:
        // predicate-check future cube tuples and stop the active
        // multi-replica's growth.
        self.cube_perturbed = true;
        self.multi.seal_active();
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Consolidator> {
        Box::new(self.clone())
    }

    fn placement(&self) -> &Placement {
        &self.placement
    }

    fn name(&self) -> &'static str {
        "cubefit"
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        let gamma = self.config.gamma().to_string();
        let base = [("algorithm", "cubefit"), ("gamma", gamma.as_str())];
        let staged = |stage: &str| {
            let mut labels = base.to_vec();
            labels.push(("stage", stage));
            recorder.counter("placements", &labels)
        };
        let outcome = |hit: &str| {
            let mut labels = base.to_vec();
            labels.push(("hit", hit));
            recorder.counter("mfit_outcomes", &labels)
        };
        self.instruments = Instruments {
            stage1: staged("mature_fit"),
            stage2: staged("cube"),
            tiny: staged("multi_replica"),
            mfit_hits: outcome("true"),
            mfit_misses: outcome("false"),
            mfit_candidates: recorder.counter("mfit_candidates_scanned", &base),
            bins_opened: recorder.counter("bins_opened", &base),
            recorder,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Stage1Eligibility, TinyPolicy};
    use crate::load::Load;
    use crate::tenant::TenantId;
    use crate::validity;

    fn tenant(id: u64, load: f64) -> Tenant {
        Tenant::new(TenantId::new(id), Load::new(load).unwrap())
    }

    fn cubefit(gamma: usize, classes: usize) -> CubeFit {
        CubeFit::new(CubeFitConfig::builder().replication(gamma).classes(classes).build().unwrap())
    }

    #[test]
    fn single_tenant_opens_gamma_bins() {
        let mut cf = cubefit(3, 10);
        let outcome = cf.place(tenant(0, 0.9)).unwrap();
        assert_eq!(outcome.bins.len(), 3);
        assert_eq!(outcome.opened, 3);
        assert_eq!(outcome.stage, PlacementStage::Cube);
        assert_eq!(cf.placement().open_bins(), 3);
    }

    #[test]
    fn duplicate_rejected_without_state_damage() {
        let mut cf = cubefit(2, 5);
        cf.place(tenant(0, 0.5)).unwrap();
        let before = cf.placement().open_bins();
        assert!(matches!(cf.place(tenant(0, 0.5)), Err(Error::DuplicateTenant { .. })));
        assert_eq!(cf.placement().open_bins(), before);
        assert_eq!(cf.placement().tenant_count(), 1);
    }

    #[test]
    fn same_class_tenants_share_cube_bins() {
        // γ=2, class 2 (replica ∈ (1/4, 1/3]): bins hold 2 payload slots,
        // groups of 2 bins, cube of 4 cells.
        let mut cf = cubefit(2, 10);
        for id in 0..4 {
            cf.place(tenant(id, 0.6)).unwrap(); // replicas 0.3 → class 2
        }
        // 4 tenants fill one full generation: 2 groups × 2 bins = 4 bins.
        assert_eq!(cf.placement().open_bins(), 4);
        assert!(cf.placement().is_robust());
        let stats = cf.stats();
        assert_eq!(stats.stage2_placements + stats.stage1_placements, 4);
    }

    #[test]
    fn update_load_rekeys_mature_slack_and_stays_auditable() {
        let mut cf = cubefit(2, 10);
        for id in 0..8 {
            cf.place(tenant(id, 0.3 + 0.05 * (id % 4) as f64)).unwrap();
        }
        // Upward drift: mature slack shrinks and the cube fast path is off.
        cf.update_load(TenantId::new(0), 0.7).unwrap();
        assert!(cf.cube_perturbed, "upward drift must perturb the cube");
        assert!(crate::oracle::audit(cf.placement()).is_ok());
        // Downward drift: slack grows back; placements still work and the
        // incremental indexes stay consistent with the oracle.
        cf.update_load(TenantId::new(1), 0.05).unwrap();
        assert!(crate::oracle::audit(cf.placement()).is_ok());
        for id in 8..20 {
            cf.place(tenant(id, 0.2 + 0.04 * (id % 5) as f64)).unwrap();
        }
        assert!(cf.placement().is_robust());
        assert!(crate::oracle::audit(cf.placement()).is_ok());
        let drifted = cf.placement().tenant_load(TenantId::new(0));
        assert_eq!(drifted, Some(0.7));
    }

    #[test]
    fn downward_drift_alone_keeps_cube_fast_path() {
        let mut cf = cubefit(2, 5);
        for id in 0..4 {
            cf.place(tenant(id, 0.6)).unwrap();
        }
        cf.update_load(TenantId::new(2), 0.4).unwrap();
        assert!(!cf.cube_perturbed, "shrinking loads only add slack");
        assert!(crate::oracle::audit(cf.placement()).is_ok());
    }

    #[test]
    fn figure2_stage1_behaviour() {
        // Fig. 2: class-1 tenants a, b mature four bins; small tenant c
        // m-fits the fullest pair; d no longer fits there and lands on the
        // other pair.
        let config = CubeFitConfig::builder()
            .replication(2)
            .classes(10)
            .stage1_eligibility(Stage1Eligibility::SmallerClassBins)
            .build()
            .unwrap();
        let mut cf = CubeFit::new(config);
        let a = cf.place(tenant(0, 0.70)).unwrap(); // class 1, matures 2 bins
        let b = cf.place(tenant(1, 0.72)).unwrap(); // class 1, matures 2 more
        assert_eq!(a.stage, PlacementStage::Cube);
        assert_eq!(b.stage, PlacementStage::Cube);
        assert_eq!(cf.stats().mature_bins, 4);

        let c = cf.place(tenant(2, 0.20)).unwrap(); // replicas 0.10
        assert_eq!(c.stage, PlacementStage::MatureFit);
        // Best Fit: c goes to b's (fuller) bins.
        let b_bins: Vec<BinId> = b.bins.clone();
        let mut c_bins = c.bins.clone();
        c_bins.sort_unstable();
        let mut expected = b_bins.clone();
        expected.sort_unstable();
        assert_eq!(c_bins, expected);

        let d = cf.place(tenant(3, 0.24)).unwrap(); // replicas 0.12
        assert_eq!(d.stage, PlacementStage::MatureFit);
        let mut d_bins = d.bins.clone();
        d_bins.sort_unstable();
        let mut a_bins = a.bins.clone();
        a_bins.sort_unstable();
        assert_eq!(d_bins, a_bins, "d only m-fits the emptier pair");
        assert!(cf.placement().is_robust());
    }

    #[test]
    fn robust_for_random_uniform_loads_gamma2() {
        let mut cf = cubefit(2, 10);
        let mut state = 0x1234_5678_u64;
        for id in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-6);
            cf.place(tenant(id, load)).unwrap();
        }
        let report = validity::check(cf.placement());
        assert!(report.is_robust(), "worst margin {}", report.worst_margin);
    }

    #[test]
    fn robust_for_random_uniform_loads_gamma3() {
        let mut cf = cubefit(3, 5);
        let mut state = 0x8765_4321_u64;
        for id in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-6);
            cf.place(tenant(id, load)).unwrap();
        }
        let report = validity::check(cf.placement());
        assert!(report.is_robust(), "worst margin {}", report.worst_margin);
    }

    #[test]
    fn tiny_tenants_aggregate() {
        let mut cf = cubefit(2, 5);
        // Tiny threshold (K=5, γ=2): replica ≤ 1/6. Load 0.05 → replica
        // 0.025; target class 4 slots are 0.2 → 8 replicas per multi.
        for id in 0..8 {
            let outcome = cf.place(tenant(id, 0.05)).unwrap();
            assert_eq!(outcome.stage, PlacementStage::MultiReplica);
        }
        // All 8 tenants share the same two bins.
        let bins = cf.placement().tenant_bins(TenantId::new(0)).unwrap().to_vec();
        for id in 1..8 {
            assert_eq!(cf.placement().tenant_bins(TenantId::new(id)).unwrap(), &bins[..]);
        }
        assert_eq!(cf.placement().open_bins(), 2);
        assert!(cf.placement().is_robust());
        // The ninth overflows the 0.2 cap and opens a fresh multi-replica.
        cf.place(tenant(8, 0.05)).unwrap();
        assert_eq!(cf.stats().sealed_multis, 1);
    }

    #[test]
    fn theoretical_tiny_policy_is_robust() {
        let config = CubeFitConfig::builder()
            .replication(2)
            .classes(10)
            .tiny_policy(TinyPolicy::Theoretical)
            .build()
            .unwrap();
        let mut cf = CubeFit::new(config);
        let mut state = 7_u64;
        for id in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Mostly tiny loads.
            let load = 0.002 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 0.15;
            cf.place(tenant(id, load)).unwrap();
        }
        assert!(cf.placement().is_robust());
        assert!(cf.stats().tiny_placements > 0);
    }

    #[test]
    fn mixed_workload_stats_partition_tenants() {
        let mut cf = cubefit(2, 5);
        let loads = [0.9, 0.8, 0.3, 0.25, 0.05, 0.04, 0.6, 0.02];
        for (id, &load) in loads.iter().enumerate() {
            cf.place(tenant(id as u64, load)).unwrap();
        }
        let stats = cf.stats();
        assert_eq!(
            stats.stage1_placements + stats.stage2_placements + stats.tiny_placements,
            loads.len()
        );
        assert!(cf.placement().is_robust());
    }

    #[test]
    fn survives_worst_case_failures_gamma3() {
        // End-to-end Theorem 1 exercise: place, fail the worst pair of
        // servers, verify no overload under conservative semantics.
        let mut cf = cubefit(3, 5);
        let mut state = 99_u64;
        for id in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = 0.05 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 0.9;
            cf.place(tenant(id, load)).unwrap();
        }
        let worst = validity::worst_failure_set(
            cf.placement(),
            2,
            validity::FailoverSemantics::Conservative,
        );
        let impact = validity::simulate_failures(
            cf.placement(),
            &worst,
            validity::FailoverSemantics::Conservative,
        );
        assert!(
            !impact.has_overload(),
            "worst-case 2-failure overloads: max load {}",
            impact.max_load()
        );
    }

    #[test]
    fn boundary_load_one_is_class1() {
        let mut cf = cubefit(2, 10);
        let outcome = cf.place(tenant(0, 1.0)).unwrap();
        assert_eq!(outcome.stage, PlacementStage::Cube);
        // Replica size exactly 1/2 → class 1; bin level 0.5 with reserve.
        assert!((cf.placement().level(outcome.bins[0]) - 0.5).abs() < 1e-12);
        assert!(cf.placement().is_robust());
    }

    #[test]
    fn recorder_traces_every_placement_and_bin_open() {
        use cubefit_telemetry::VecSink;
        use std::sync::Arc;

        let sink = Arc::new(VecSink::new());
        let recorder = Recorder::with_sink(Arc::clone(&sink));
        let mut cf = cubefit(2, 5);
        cf.set_recorder(recorder.clone());
        let loads = [0.9, 0.8, 0.3, 0.25, 0.05, 0.04, 0.6, 0.02];
        for (id, &load) in loads.iter().enumerate() {
            cf.place(tenant(id as u64, load)).unwrap();
        }

        let events = sink.events();
        let count = |f: fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
        // One BinOpened per server the placement reports — the trace-level
        // invariant the CLI acceptance check relies on.
        assert_eq!(
            count(|e| matches!(e, TraceEvent::BinOpened { .. })),
            cf.placement().open_bins()
        );
        assert_eq!(count(|e| matches!(e, TraceEvent::TenantArrived { .. })), loads.len());
        assert_eq!(count(|e| matches!(e, TraceEvent::Placed { .. })), loads.len());
        // Running totals in BinOpened events are strictly increasing.
        let totals: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BinOpened { total_open, .. } => Some(*total_open),
                _ => None,
            })
            .collect();
        assert!(totals.windows(2).all(|w| w[0] < w[1]), "totals {totals:?}");

        // Counters mirror the stage partition in `stats()`.
        let snap = recorder.snapshot();
        let stats = cf.stats();
        let stage = |s: &str| snap.counter("placements", &[("stage", s)]) as usize;
        assert_eq!(stage("mature_fit"), stats.stage1_placements);
        assert_eq!(stage("cube"), stats.stage2_placements);
        assert_eq!(stage("multi_replica"), stats.tiny_placements);
        assert_eq!(
            snap.counter("bins_opened", &[("algorithm", "cubefit")]) as usize,
            cf.placement().open_bins()
        );
        let hits = snap.counter("mfit_outcomes", &[("hit", "true")]) as usize;
        assert_eq!(hits, stats.stage1_placements);
    }

    #[test]
    fn disabled_recorder_changes_nothing() {
        let mut traced = cubefit(2, 5);
        traced.set_recorder(Recorder::disabled());
        let mut plain = cubefit(2, 5);
        for id in 0..50_u64 {
            let load = 0.01 + 0.019 * (id % 50) as f64;
            let a = traced.place(tenant(id, load)).unwrap();
            let b = plain.place(tenant(id, load)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(traced.stats(), plain.stats());
    }

    #[test]
    fn consolidator_trait_name() {
        let cf = cubefit(2, 5);
        assert_eq!(cf.name(), "cubefit");
        assert_eq!(cf.gamma(), 2);
    }

    #[test]
    fn departed_cube_cell_is_reused_by_same_class() {
        // γ=2, class 2 (replica ∈ (1/4, 1/3]). Fill one full generation of
        // 4 tenants, remove one, and the next same-class arrival must land
        // in the vacated cell instead of advancing the cube.
        let mut cf = cubefit(2, 10);
        for id in 0..4 {
            cf.place(tenant(id, 0.6)).unwrap();
        }
        let bins_before = cf.placement().open_bins();
        let removed = cf.remove(TenantId::new(1)).unwrap();
        assert!((removed.load - 0.6).abs() < 1e-12);
        let outcome = cf.place(tenant(10, 0.6)).unwrap();
        assert_eq!(outcome.stage, PlacementStage::Cube);
        assert_eq!(outcome.opened, 0, "reuse must not open bins");
        let mut got = outcome.bins.clone();
        got.sort_unstable();
        let mut vacated = removed.bins.clone();
        vacated.sort_unstable();
        assert_eq!(got, vacated, "new tenant lands in the vacated cell");
        assert_eq!(cf.placement().open_bins(), bins_before);
        assert_eq!(cf.stats().cells_reused, 1);
        assert!(cf.placement().is_robust());
        assert!(crate::oracle::audit(cf.placement()).is_ok());
    }

    #[test]
    fn infeasible_free_cell_is_skipped_not_lost() {
        // Mature a cell's bins with stage-1 guests after the owner departs;
        // if the guests consumed the slack, reuse must fall back to fresh
        // cube slots rather than overload the cell.
        let mut cf = cubefit(2, 10);
        for id in 0..4 {
            cf.place(tenant(id, 0.6)).unwrap();
        }
        cf.remove(TenantId::new(0)).unwrap();
        // Occupy the vacated pair's slack via stage-1 guests (replica 0.1
        // each m-fits the now-emptier bins).
        for id in 20..26 {
            cf.place(tenant(id, 0.2)).unwrap();
        }
        // Whatever path the next class-2 tenant takes, the invariants hold.
        cf.place(tenant(30, 0.6)).unwrap();
        assert!(cf.placement().is_robust());
        assert!(crate::oracle::audit(cf.placement()).is_ok());
    }

    #[test]
    fn removal_keeps_indexes_consistent_under_interleaving() {
        let mut cf = cubefit(3, 5);
        let mut state = 0xfeed_u64;
        let mut alive: Vec<u64> = Vec::new();
        let mut departed: Vec<u64> = Vec::new();
        for id in 0..300_u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = 0.01 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 0.95;
            cf.place(tenant(id, load)).unwrap();
            alive.push(id);
            // Depart roughly every third arrival, from the middle.
            if id % 3 == 2 {
                let victim = alive.remove(alive.len() / 2);
                cf.remove(TenantId::new(victim)).unwrap();
                departed.push(victim);
            }
        }
        assert_eq!(cf.placement().tenant_count(), alive.len());
        assert!(cf.placement().is_robust());
        assert!(crate::oracle::audit(cf.placement()).is_ok());
        // Departed ids are re-admissible.
        cf.place(tenant(departed[0], 0.4)).unwrap();
        assert!(crate::oracle::audit(cf.placement()).is_ok());
    }

    #[test]
    fn recovery_restores_theorem1_after_gamma_minus_one_failures() {
        let mut cf = cubefit(3, 5);
        let mut state = 0xbeef_u64;
        for id in 0..120 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let load = 0.05 + ((state >> 11) as f64 / (1u64 << 53) as f64) * 0.9;
            cf.place(tenant(id, load)).unwrap();
        }
        // Fail the worst γ−1 = 2 servers the validity checker can find.
        let failed = validity::worst_failure_set(
            cf.placement(),
            2,
            validity::FailoverSemantics::Conservative,
        );
        let orphaned = recovery::orphans(cf.placement(), &failed).len();
        let report = cf.recover(&failed).unwrap();
        assert_eq!(report.replicas_migrated, orphaned);
        assert!(report.moved_load > 0.0);
        for &bin in &failed {
            assert_eq!(cf.placement().level(bin), 0.0, "failed bin {bin} must end empty");
        }
        for (_, _, bins) in cf.placement().tenants() {
            assert_eq!(bins.len(), 3, "every tenant keeps γ distinct replicas");
            assert!(failed.iter().all(|f| !bins.contains(f)));
        }
        assert!(cf.placement().is_robust(), "recovery must re-establish Theorem 1");
        assert!(crate::oracle::audit(cf.placement()).is_ok());
        // The substrate stays placeable after recovery.
        cf.place(tenant(500, 0.5)).unwrap();
        assert!(cf.placement().is_robust());
    }

    #[test]
    fn clone_box_forks_cube_state_independently() {
        let mut cf = cubefit(2, 10);
        for id in 0..4 {
            cf.place(tenant(id, 0.6)).unwrap();
        }
        let mut fork = cf.clone_box();
        fork.remove(TenantId::new(0)).unwrap();
        fork.place(tenant(9, 0.6)).unwrap();
        assert_eq!(cf.placement().tenant_count(), 4);
        assert_eq!(fork.placement().tenant_count(), 4);
        assert!(cf.placement().tenant_bins(TenantId::new(0)).is_some());
        assert!(fork.placement().tenant_bins(TenantId::new(0)).is_none());
        assert!(crate::oracle::audit(cf.placement()).is_ok());
        assert!(crate::oracle::audit(fork.placement()).is_ok());
    }

    #[test]
    fn churn_emits_departure_and_migration_events() {
        use cubefit_telemetry::VecSink;
        use std::sync::Arc;

        let sink = Arc::new(VecSink::new());
        let mut cf = cubefit(2, 5);
        cf.set_recorder(Recorder::with_sink(Arc::clone(&sink)));
        let a = cf.place(tenant(0, 0.5)).unwrap();
        cf.place(tenant(1, 0.7)).unwrap();
        cf.remove(TenantId::new(1)).unwrap();
        cf.recover(&[a.bins[0]]).unwrap();
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::TenantDeparted { tenant: 1, .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::ReplicaMigrated { tenant: 0, .. })));
    }
}
