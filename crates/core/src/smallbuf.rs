//! A tiny inline-first buffer for hot-path adjustment lists.
//!
//! Feasibility checks ([`crate::mfit`], the baseline packers) build short
//! lists of tentative sibling/growth adjustments inside every candidate
//! scan. For the paper's `γ ∈ {2, 3}` these lists hold a handful of
//! entries, so a stack array avoids allocation on the hot path — but `γ`
//! is unbounded, and silently dropping entries past a fixed capacity
//! under-estimates the failover reserve (the truncation bug this type
//! exists to prevent). [`SmallBuf`] keeps the first `N` entries inline and
//! transparently spills the whole list to a heap `Vec` when a push would
//! overflow, so correctness never depends on the inline capacity.

/// An append-only buffer holding up to `N` entries inline, spilling to the
/// heap beyond that.
///
/// ```
/// use cubefit_core::smallbuf::SmallBuf;
///
/// let mut buf: SmallBuf<usize, 2> = SmallBuf::new(0);
/// for i in 0..5 {
///     buf.push(i);
/// }
/// // All five entries survive the spill past the inline capacity.
/// assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct SmallBuf<T, const N: usize> {
    /// Inline storage; only `inline[..len]` is meaningful while `spill`
    /// is empty.
    inline: [T; N],
    len: usize,
    /// Heap storage holding *all* entries once the inline capacity
    /// overflows (the inline prefix is copied over on first spill).
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> SmallBuf<T, N> {
    /// Creates an empty buffer; `fill` seeds the inline slots (its value is
    /// never observed — slots are overwritten before they enter
    /// [`Self::as_slice`]).
    #[must_use]
    pub fn new(fill: T) -> Self {
        SmallBuf { inline: [fill; N], len: 0, spill: Vec::new() }
    }

    /// Appends `value`, spilling every entry to the heap if the inline
    /// capacity is exhausted.
    pub fn push(&mut self, value: T) {
        if !self.spill.is_empty() {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            self.spill.reserve(N * 2);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(value);
        }
    }

    /// Number of entries pushed.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len
        } else {
            self.spill.len()
        }
    }

    /// Whether no entries have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries, in push order.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// All entries, in push order, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_within_capacity() {
        let mut buf: SmallBuf<u32, 4> = SmallBuf::new(0);
        assert!(buf.is_empty());
        for i in 0..4 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_without_losing_entries() {
        let mut buf: SmallBuf<u32, 3> = SmallBuf::new(0);
        for i in 0..10 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
        assert!(!buf.is_empty());
    }

    #[test]
    fn mutable_slice_covers_both_modes() {
        let mut inline: SmallBuf<i32, 4> = SmallBuf::new(0);
        inline.push(3);
        inline.push(1);
        inline.as_mut_slice().sort_unstable();
        assert_eq!(inline.as_slice(), &[1, 3]);

        let mut spilled: SmallBuf<i32, 2> = SmallBuf::new(0);
        for v in [5, 2, 9, 1] {
            spilled.push(v);
        }
        spilled.as_mut_slice().sort_unstable();
        assert_eq!(spilled.as_slice(), &[1, 2, 5, 9]);
    }
}
