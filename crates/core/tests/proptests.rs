//! Property-based tests of cubefit-core invariants (proptest).

use cubefit_core::cube::CubeAddress;
use cubefit_core::validity;
use cubefit_core::{
    Classifier, Consolidator, CubeFit, CubeFitConfig, Load, Placement, Tenant, TenantId,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Classifier: every replica size in (0, 1/γ] maps to exactly the class
    /// whose interval contains it.
    #[test]
    fn classify_is_consistent_with_size_range(
        classes in 2usize..20,
        gamma in 2usize..4,
        numer in 1u32..10_000,
    ) {
        let classifier = Classifier::new(classes, gamma);
        let size = f64::from(numer) / 10_000.0 / gamma as f64;
        let class = classifier.classify(size);
        let (lo, hi) = classifier.size_range(class);
        // Within tolerance of the declared interval (boundaries snap).
        prop_assert!(size <= hi + 1e-9, "size {size} above class {class} hi {hi}");
        if class.index() < classes {
            prop_assert!(size > lo - 1e-9, "size {size} below class {class} lo {lo}");
        }
    }

    /// Cube addressing is a bijection between counter values and cells, in
    /// every group.
    #[test]
    fn cube_addresses_are_bijective(tau in 1usize..6, gamma in 2usize..4) {
        let capacity = (tau as u64).pow(gamma as u32);
        for shift in 0..gamma {
            let mut seen = std::collections::HashSet::new();
            for counter in 0..capacity {
                let addr = CubeAddress::from_counter(counter, tau, gamma).shifted_right(shift);
                prop_assert!(addr.bin_index() < tau.pow(gamma as u32 - 1));
                prop_assert!(addr.slot_index() < tau);
                prop_assert!(seen.insert((addr.bin_index(), addr.slot_index())));
            }
        }
    }

    /// Lemma 1 end-to-end: stage-2 CubeFit placements never let two bins
    /// share replicas of more than one *stage-2* tenant.
    #[test]
    fn lemma1_holds_for_stage2_placements(
        loads in prop::collection::vec(0.2f64..=1.0, 1..60),
        gamma in 2usize..4,
    ) {
        // Disable stage 1 reuse paths by construction: loads ≥ 0.2 with
        // γ ≤ 3 give replicas ≥ 0.066 (regular classes for K = 10), and we
        // filter to tenants placed via the cube stage.
        let config = CubeFitConfig::builder()
            .replication(gamma)
            .classes(10)
            .build()
            .unwrap();
        let mut cf = CubeFit::new(config);
        let mut stage2_bins: Vec<Vec<cubefit_core::BinId>> = Vec::new();
        for (i, &load) in loads.iter().enumerate() {
            let outcome = cf
                .place(Tenant::new(TenantId::new(i as u64), Load::new(load).unwrap()))
                .unwrap();
            if outcome.stage == cubefit_core::PlacementStage::Cube {
                stage2_bins.push(outcome.bins);
            }
        }
        let mut pair_count: HashMap<(usize, usize), usize> = HashMap::new();
        for bins in &stage2_bins {
            for (i, a) in bins.iter().enumerate() {
                for b in &bins[i + 1..] {
                    let key = if a.index() < b.index() {
                        (a.index(), b.index())
                    } else {
                        (b.index(), a.index())
                    };
                    *pair_count.entry(key).or_insert(0) += 1;
                }
            }
        }
        for (&(a, b), &count) in &pair_count {
            prop_assert!(count <= 1, "bins {a},{b} share {count} stage-2 tenants");
        }
    }

    /// The shared-load matrix always equals a from-scratch recomputation.
    #[test]
    fn shared_load_matrix_matches_ground_truth(
        assignments in prop::collection::vec((0.01f64..=1.0, any::<u8>()), 1..40),
    ) {
        let gamma = 2;
        let mut p = Placement::new(gamma);
        let bins: Vec<_> = (0..8).map(|_| p.open_bin(None)).collect();
        let mut truth: HashMap<(usize, usize), f64> = HashMap::new();
        for (i, &(load, pick)) in assignments.iter().enumerate() {
            let a = bins[(pick % 8) as usize];
            let b = bins[((pick / 8 + 1 + pick % 7) % 8) as usize];
            if a == b {
                continue;
            }
            let tenant = Tenant::new(TenantId::new(i as u64), Load::new(load).unwrap());
            p.place_tenant(&tenant, &[a, b]).unwrap();
            let replica = load / gamma as f64;
            *truth.entry((a.index().min(b.index()), a.index().max(b.index()))).or_insert(0.0) +=
                replica;
        }
        for (&(a, b), &expected) in &truth {
            let got = p.shared_load(cubefit_core::BinId::new(a), cubefit_core::BinId::new(b));
            prop_assert!((got - expected).abs() < 1e-9, "{a},{b}: {got} vs {expected}");
        }
        // Worst failover equals the max row entry (γ−1 = 1).
        for &bin in &bins {
            let max_row = p
                .shared_peers(bin)
                .map(|(_, v)| v)
                .fold(0.0f64, f64::max);
            prop_assert!((p.worst_failover(bin) - max_row).abs() < 1e-9);
        }
    }

    /// Failure simulation conserves load: total surviving load equals the
    /// original total minus unavailable tenants' loads (even-split).
    #[test]
    fn even_split_failover_conserves_load(
        loads in prop::collection::vec(0.01f64..=1.0, 1..50),
        failures in prop::collection::vec(0usize..12, 1..3),
    ) {
        let config = CubeFitConfig::builder().replication(2).classes(5).build().unwrap();
        let mut cf = CubeFit::new(config);
        for (i, &load) in loads.iter().enumerate() {
            cf.place(Tenant::new(TenantId::new(i as u64), Load::new(load).unwrap())).unwrap();
        }
        let p = cf.placement();
        let bins: Vec<_> = p.bins().filter(|b| !b.is_empty()).map(|b| b.id()).collect();
        let failed: Vec<_> = failures
            .iter()
            .map(|&f| bins[f % bins.len()])
            .collect();
        let impact = validity::simulate_failures(p, &failed, validity::FailoverSemantics::EvenSplit);
        let surviving: f64 = impact.loads.iter().map(|(_, l)| l).sum();
        let unavailable: f64 = impact
            .unavailable_tenants
            .iter()
            .map(|t| p.tenant_load(*t).unwrap())
            .sum();
        // Loads on failed bins of *surviving* tenants redirect; unavailable
        // tenants' full loads vanish with them.
        let total: f64 = loads.iter().sum();
        let expected = total - unavailable;
        prop_assert!((surviving - expected).abs() < 1e-6, "{surviving} vs {expected}");
    }
}
