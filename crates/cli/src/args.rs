//! Minimal flag parsing for the `cubefit` binary.
//!
//! Deliberately dependency-free: the CLI surface is small and stable, and a
//! hand-rolled parser keeps the offline build light. Flags are
//! `--name value` pairs; the first non-flag token is the subcommand and
//! remaining non-flag tokens are positional arguments.

use std::collections::HashMap;
use std::fmt;

/// Flags that take no value (`--audit`), as opposed to the default
/// `--name value` form. A switch's presence is queried with
/// [`ParsedArgs::has`]; its stored value is the empty string.
const SWITCHES: &[&str] =
    &["audit", "bench", "dry-run", "drift", "json", "rent", "shrink", "storm", "expect-clean"];

/// A parsed command line: subcommand, positionals, and `--flag value`
/// pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token), if any.
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Errors produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgsError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// The same flag appeared twice.
    Duplicate(String),
    /// A required flag was absent.
    Required(String),
    /// A flag's value failed to parse.
    Invalid {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "--{flag} expects a value"),
            ArgsError::Duplicate(flag) => write!(f, "--{flag} given more than once"),
            ArgsError::Required(flag) => write!(f, "--{flag} is required"),
            ArgsError::Invalid { flag, value, expected } => {
                write!(f, "--{flag} {value}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl ParsedArgs {
    /// Parses raw tokens (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] or [`ArgsError::Duplicate`] on
    /// malformed flag syntax.
    pub fn parse<I, S>(tokens: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut parsed = ParsedArgs::default();
        let mut iter = tokens.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                let value = if SWITCHES.contains(&name) {
                    String::new()
                } else {
                    iter.next().ok_or_else(|| ArgsError::MissingValue(name.to_string()))?
                };
                if parsed.flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgsError::Duplicate(name.to_string()));
                }
            } else if parsed.command.is_none() {
                parsed.command = Some(token);
            } else {
                parsed.positional.push(token);
            }
        }
        Ok(parsed)
    }

    /// The raw value of `flag`, if present.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Whether `flag` was given (the query for valueless switches such as
    /// `--audit`).
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// [`ArgsError::Required`] if absent.
    pub fn required(&self, flag: &str) -> Result<&str, ArgsError> {
        self.get(flag).ok_or_else(|| ArgsError::Required(flag.to_string()))
    }

    /// A typed flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::Invalid`] if present but unparseable.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::Invalid {
                flag: flag.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// Names of flags that were provided (for unknown-flag validation).
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }

    /// Validates that every provided flag is in `allowed`.
    ///
    /// # Errors
    ///
    /// [`ArgsError::Invalid`] naming the first unknown flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        for name in self.flag_names() {
            if !allowed.contains(&name) {
                return Err(ArgsError::Invalid {
                    flag: name.to_string(),
                    value: String::new(),
                    expected: "a supported flag for this subcommand",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_flags_and_positionals() {
        let args = ParsedArgs::parse(["place", "--gamma", "2", "trace.cft", "--algorithm", "rfi"])
            .unwrap();
        assert_eq!(args.command.as_deref(), Some("place"));
        assert_eq!(args.positional, vec!["trace.cft"]);
        assert_eq!(args.get("gamma"), Some("2"));
        assert_eq!(args.get("algorithm"), Some("rfi"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn switches_take_no_value() {
        // `--audit` must not swallow the following positional.
        let args = ParsedArgs::parse(["check", "--audit", "dump.json"]).unwrap();
        assert!(args.has("audit"));
        assert_eq!(args.positional, vec!["dump.json"]);
        // Same for `--dry-run`.
        let args = ParsedArgs::parse(["defrag", "--dry-run", "--seed", "3"]).unwrap();
        assert!(args.has("dry-run"));
        assert_eq!(args.get("seed"), Some("3"));
        // Trailing position works too, and absence is reported.
        let args = ParsedArgs::parse(["check", "dump.json", "--audit"]).unwrap();
        assert!(args.has("audit"));
        assert!(!args.has("render"));
        assert_eq!(args.positional, vec!["dump.json"]);
        assert_eq!(
            ParsedArgs::parse(["check", "--audit", "--audit"]),
            Err(ArgsError::Duplicate("audit".into()))
        );
    }

    #[test]
    fn missing_value_and_duplicates_error() {
        assert_eq!(
            ParsedArgs::parse(["x", "--gamma"]),
            Err(ArgsError::MissingValue("gamma".into()))
        );
        assert_eq!(
            ParsedArgs::parse(["x", "--a", "1", "--a", "2"]),
            Err(ArgsError::Duplicate("a".into()))
        );
    }

    #[test]
    fn typed_access() {
        let args = ParsedArgs::parse(["c", "--n", "42", "--bad", "xyz"]).unwrap();
        assert_eq!(args.get_or("n", 7usize, "an integer").unwrap(), 42);
        assert_eq!(args.get_or("absent", 7usize, "an integer").unwrap(), 7);
        assert!(args.get_or::<usize>("bad", 0, "an integer").is_err());
        assert!(args.required("n").is_ok());
        assert!(matches!(args.required("nope"), Err(ArgsError::Required(_))));
    }

    #[test]
    fn unknown_flag_rejection() {
        let args = ParsedArgs::parse(["c", "--known", "1", "--typo", "2"]).unwrap();
        assert!(args.expect_only(&["known", "typo"]).is_ok());
        assert!(args.expect_only(&["known"]).is_err());
    }

    #[test]
    fn error_display() {
        for e in [
            ArgsError::MissingValue("a".into()),
            ArgsError::Duplicate("b".into()),
            ArgsError::Required("c".into()),
            ArgsError::Invalid { flag: "d".into(), value: "x".into(), expected: "an int" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
