//! # cubefit-cli
//!
//! The `cubefit` command-line tool: generate workload traces, place them
//! with any algorithm in the workspace, audit placements for robustness,
//! compare algorithms, and run failure simulations — the operator-facing
//! surface of the CubeFit reproduction.
//!
//! ```console
//! $ cubefit generate --out fleet.cft --distribution zipf:3 --tenants 5000
//! $ cubefit place --trace fleet.cft --algorithm cubefit:k=10 --out fleet.json
//! $ cubefit check fleet.json
//! $ cubefit compare --trace fleet.cft --algorithms cubefit,rfi,bestfit
//! $ cubefit simulate fleet.json --trace fleet.cft --failures 1
//! $ cubefit churn --algorithm cubefit --gamma 3 --ops 2000 --audit
//! $ cubefit rent --ops 2000 --block-ms 3600000 --defrag-moves 64 --audit
//! $ cubefit soak --ops 1000000 --seed 7 --trace-out soak.jsonl
//! $ cubefit serve --bench --storm --out serve.json --dump serve-placement.json
//! $ cubefit analyze soak.jsonl --expect-clean
//! $ cubefit replay cubefit-soak-scenario.json --shrink
//! $ cubefit soak --ops 20000 --journal wal --fsync interval:64
//! $ cubefit recover wal --audit --out recovered.json
//! ```
//!
//! Every subcommand is a pure function from parsed arguments to output
//! text (see [`commands`]), so the full CLI is unit tested in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod args;
pub mod commands;
mod output;
pub mod spec_parse;
pub mod telemetry_out;

use args::ParsedArgs;

/// The tool's help text.
#[must_use]
pub fn help() -> String {
    format!(
        "cubefit — robust multi-tenant server consolidation (ICDCS 2017 reproduction)\n\n\
         USAGE:\n  cubefit <COMMAND> [FLAGS]\n\n\
         COMMANDS:\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  help\n",
        commands::generate::USAGE,
        commands::place::USAGE,
        commands::check::USAGE,
        commands::compare::USAGE,
        commands::simulate::USAGE,
        commands::churn::USAGE,
        commands::defrag::USAGE,
        commands::drift::USAGE,
        commands::rent::USAGE,
        commands::soak::USAGE,
        commands::serve::USAGE,
        commands::analyze::USAGE,
        commands::replay::USAGE,
        commands::metrics::USAGE,
        commands::recover::USAGE,
    )
}

/// Dispatches a parsed command line, returning the text to print.
///
/// # Errors
///
/// Returns the error text to print to stderr (the process should exit
/// non-zero).
pub fn dispatch(args: &ParsedArgs) -> Result<String, String> {
    match args.command.as_deref() {
        Some("generate") => commands::generate::run(args),
        Some("place") => commands::place::run(args),
        Some("check") => commands::check::run(args),
        Some("compare") => commands::compare::run(args),
        Some("simulate") => commands::simulate::run(args),
        Some("churn") => commands::churn::run(args),
        Some("defrag") => commands::defrag::run(args),
        Some("drift") => commands::drift::run(args),
        Some("rent") => commands::rent::run(args),
        Some("soak") => commands::soak::run(args),
        Some("serve") => commands::serve::run(args),
        Some("analyze") => commands::analyze::run(args),
        Some("replay") => commands::replay::run(args),
        Some("metrics") => commands::metrics::run(args),
        Some("recover") => commands::recover::run(args),
        Some("help") | None => Ok(help()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", help())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_every_command() {
        let text = help();
        for command in [
            "generate", "place", "check", "compare", "simulate", "churn", "defrag", "drift",
            "rent", "soak", "serve", "analyze", "replay", "metrics", "recover",
        ] {
            assert!(text.contains(command), "help missing {command}");
        }
    }

    #[test]
    fn dispatch_routes_and_rejects() {
        assert!(dispatch(&ParsedArgs::parse(["help"]).unwrap()).is_ok());
        assert!(dispatch(&ParsedArgs::parse(Vec::<String>::new()).unwrap()).is_ok());
        assert!(dispatch(&ParsedArgs::parse(["frobnicate"]).unwrap())
            .unwrap_err()
            .contains("unknown command"));
    }
}
