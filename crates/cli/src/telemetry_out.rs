//! Shared `--metrics-out` / `--trace-out` plumbing for subcommands.

use cubefit_telemetry::{JsonlSink, MetricsSnapshot, Recorder};
use std::fs::File;
use std::io::BufWriter;

/// Builds the recorder implied by the two optional output flags: a
/// JSONL-streaming recorder when `--trace-out` is set, a metrics-only
/// recorder when just `--metrics-out` is set, and the disabled (zero-cost)
/// recorder when neither is.
///
/// # Errors
///
/// Returns a message if the trace file cannot be created.
pub fn recorder_for(
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<Recorder, String> {
    match trace_out {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            Ok(Recorder::with_sink(JsonlSink::new(BufWriter::new(file))))
        }
        None if metrics_out.is_some() => Ok(Recorder::enabled()),
        None => Ok(Recorder::disabled()),
    }
}

/// Writes a pretty-printed metrics snapshot to `path`.
///
/// # Errors
///
/// Returns a message on serialization or I/O failure.
pub fn write_metrics(path: &str, metrics: &MetricsSnapshot) -> Result<(), String> {
    let json = serde_json::to_string_pretty(metrics).map_err(|e| e.to_string())?;
    crate::output::write_report(path, json)
}
