//! `cubefit analyze` — streaming JSONL trace analysis in O(open-servers)
//! memory.

use crate::args::ParsedArgs;
use cubefit_telemetry::{analyze_reader, AnalyzeConfig};
use std::fs::File;
use std::io::BufReader;

/// Flags accepted by `analyze`.
pub const FLAGS: &[&str] = &["trace", "op-window", "bin-group", "out", "json", "expect-clean"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "analyze TRACE.jsonl [--op-window N] [--bin-group N] \
                         [--out REPORT.json] [--json] [--expect-clean]";

/// Runs the command: streams the trace once through the analyzer and
/// prints the human report (or the JSON report with `--json`).
///
/// # Errors
///
/// Returns a message for bad flags, unreadable traces — or, with
/// `--expect-clean`, a trace containing violations, divergences,
/// malformed lines, or a dirty final audit (so CI exits non-zero).
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let path = match (args.positional.first(), args.get("trace")) {
        (Some(p), _) => p.as_str(),
        (None, Some(p)) => p,
        (None, None) => return Err(format!("usage: {USAGE}")),
    };
    let config = AnalyzeConfig {
        op_window: args.get_or("op-window", 10_000u64, "an integer").map_err(|e| e.to_string())?,
        bin_group: args.get_or("bin-group", 8usize, "an integer").map_err(|e| e.to_string())?,
    };
    if config.op_window == 0 || config.bin_group == 0 {
        return Err("--op-window and --bin-group must be positive".to_owned());
    }
    // BufReader + line-at-a-time analyzer: the trace never lives in
    // memory, only the open-server set and bounded aggregates do.
    let file = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let report = analyze_reader(BufReader::new(file), config)?;

    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    let mut output = String::new();
    if let Some(out_path) = args.get("out") {
        crate::output::write_report(out_path, &json)?;
        output.push_str(&format!("analysis written to {out_path}\n"));
    }
    if args.has("json") {
        output.push_str(&json);
        output.push('\n');
    } else {
        output.push_str(&report.render());
    }
    if args.has("expect-clean") && !report.is_clean() {
        return Err(format!(
            "{output}trace is NOT clean: {} violations, {} divergences, {} malformed lines, \
             final audit clean: {:?}",
            report.violations_total,
            report.divergences_total,
            report.malformed_lines,
            report.final_audit_clean,
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_telemetry::TraceReport;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn soak_trace(name: &str, inject: Option<u64>) -> String {
        let path = tmp(name);
        let mut argv = vec![
            "soak".to_owned(),
            "--ops".to_owned(),
            "1200".to_owned(),
            "--seed".to_owned(),
            "11".to_owned(),
            "--checkpoint-every".to_owned(),
            "100".to_owned(),
            "--out".to_owned(),
            tmp(&format!("{name}.report.json")),
            "--trace-out".to_owned(),
            path.clone(),
        ];
        if let Some(op) = inject {
            argv.push("--inject-at".to_owned());
            argv.push(op.to_string());
            argv.push("--scenario-out".to_owned());
            argv.push(tmp(&format!("{name}.scenario.json")));
        }
        let args = ParsedArgs::parse(argv).unwrap();
        let result = super::super::soak::run(&args);
        assert_eq!(result.is_err(), inject.is_some(), "{result:?}");
        path
    }

    #[test]
    fn analyzes_a_real_soak_trace_end_to_end() {
        let trace = soak_trace("analyze-clean.jsonl", None);
        let out_path = tmp("analyze-clean-report.json");
        let args =
            ParsedArgs::parse(["analyze", &trace, "--expect-clean", "--out", &out_path]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("analysis written to"), "{out}");
        assert!(out.contains("events:"), "{out}");
        let report: TraceReport =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert!(report.is_clean());
        assert!(report.events.contains_key("SoakCheckpoint"), "{:?}", report.events);
        assert!(report.audits > 0);
        assert_eq!(report.final_audit_clean, Some(true));
        assert!(!report.fragmentation.is_empty());
    }

    #[test]
    fn expect_clean_fails_on_a_violating_trace() {
        // Op 731 hits a well-populated placement (shared bins), so the
        // inflated tenants push levels strictly past 1 — a violation, not
        // just margin-zero at-risk.
        let trace = soak_trace("analyze-dirty.jsonl", Some(731));
        let args = ParsedArgs::parse(["analyze", &trace, "--expect-clean"]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("NOT clean"), "{err}");
        // Without the gate the same trace still analyzes fine.
        let args = ParsedArgs::parse(["analyze", &trace, "--json"]).unwrap();
        let out = run(&args).unwrap();
        let report: TraceReport = serde_json::from_str(&out).unwrap();
        assert!(report.violations_total > 0);
    }

    #[test]
    fn rejects_missing_trace_and_bad_windows() {
        let args = ParsedArgs::parse(["analyze"]).unwrap();
        assert!(run(&args).unwrap_err().contains("usage"));
        let args = ParsedArgs::parse(["analyze", "x.jsonl", "--op-window", "0"]).unwrap();
        assert!(run(&args).unwrap_err().contains("positive"));
        let args = ParsedArgs::parse(["analyze", "/nonexistent/trace.jsonl"]).unwrap();
        assert!(run(&args).unwrap_err().contains("opening"));
    }
}
