//! `cubefit compare` — run several algorithms over one trace.

use crate::args::ParsedArgs;
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_sim::report::TextTable;
use cubefit_workload::trace;

/// Flags accepted by `compare`.
pub const FLAGS: &[&str] = &["trace", "algorithms", "gamma", "metrics-out", "trace-out"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "compare --trace TRACE [--algorithms cubefit,rfi,bestfit] [--gamma G] \
                         [--metrics-out METRICS.json] [--trace-out EVENTS.jsonl]";

/// Runs the command, returning its stdout table.
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let trace_path = args.required("trace").map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let list = args.get("algorithms").unwrap_or("cubefit,rfi,bestfit");

    let bytes = std::fs::read(trace_path).map_err(|e| format!("reading {trace_path}: {e}"))?;
    let sequence = trace::decode(&bytes[..]).map_err(|e| format!("decoding {trace_path}: {e}"))?;

    let mut table =
        TextTable::new(vec!["algorithm", "servers", "utilization", "robust", "placement time"]);
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    // One recorder across all algorithms: counters stay separable via the
    // `algorithm` label, and the trace interleaves the runs in order.
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    let mut best: Option<(String, usize)> = None;
    for raw in list.split(',') {
        let spec = spec_parse::parse_algorithm(raw.trim(), gamma)?;
        let result = cubefit_sim::run_sequence_with(&spec, &sequence, &recorder)
            .map_err(|e| e.to_string())?;
        if best.as_ref().is_none_or(|(_, s)| result.servers < *s) {
            best = Some((result.algorithm.clone(), result.servers));
        }
        table.row(vec![
            result.algorithm,
            result.servers.to_string(),
            format!("{:.1}%", result.utilization * 100.0),
            result.robust.to_string(),
            format!("{:.1?}", result.wall),
        ]);
    }
    recorder.flush()?;
    let mut output = table.render();
    if let Some((name, servers)) = best {
        output.push_str(&format!("\nbest: {name} with {servers} servers\n"));
    }
    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &recorder.snapshot())?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("decision trace written to {path}\n"));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::generate;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn compares_multiple_algorithms() {
        let trace = tmp("compare.cft");
        generate::run(
            &ParsedArgs::parse(["generate", "--out", &trace, "--tenants", "60"]).unwrap(),
        )
        .unwrap();
        let args = ParsedArgs::parse([
            "compare",
            "--trace",
            &trace,
            "--algorithms",
            "cubefit:k=5,rfi,nextfit",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("cubefit"));
        assert!(out.contains("rfi"));
        assert!(out.contains("nextfit"));
        assert!(out.contains("best:"));
    }

    #[test]
    fn metrics_out_separates_algorithms_by_label() {
        use cubefit_telemetry::MetricsSnapshot;

        let trace = tmp("compare-metrics.cft");
        let metrics_path = tmp("compare-metrics.json");
        generate::run(
            &ParsedArgs::parse(["generate", "--out", &trace, "--tenants", "50"]).unwrap(),
        )
        .unwrap();
        let args = ParsedArgs::parse([
            "compare",
            "--trace",
            &trace,
            "--algorithms",
            "cubefit,bestfit",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        run(&args).unwrap();
        let metrics: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(metrics.counter("placements", &[("algorithm", "cubefit")]), 50);
        assert_eq!(metrics.counter("placements", &[("algorithm", "bestfit")]), 50);
    }

    #[test]
    fn propagates_spec_errors() {
        let trace = tmp("compare-err.cft");
        generate::run(&ParsedArgs::parse(["generate", "--out", &trace, "--tenants", "5"]).unwrap())
            .unwrap();
        let args =
            ParsedArgs::parse(["compare", "--trace", &trace, "--algorithms", "nope"]).unwrap();
        assert!(run(&args).is_err());
    }
}
