//! `cubefit replay` — deterministically reproduce a soak failure scenario
//! and shrink it to the minimal pinned regression.

use crate::args::ParsedArgs;
use cubefit_sim::soak::{replay, shrink, SoakScenario};

/// Flags accepted by `replay`.
pub const FLAGS: &[&str] = &["scenario", "shrink", "out"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "replay SCENARIO.json [--shrink] [--out PINNED.json]";

/// Runs the command: replays the scenario's suspect op window and, with
/// `--shrink`, bisects it down to a one-op pinned regression (written to
/// `--out`, default `<scenario>.min.json`).
///
/// # Errors
///
/// Returns a message for bad flags, unreadable scenario files, or a
/// scenario that does not reproduce (replays run to prove a failure; a
/// clean replay means the repro is stale).
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let path = match (args.positional.first(), args.get("scenario")) {
        (Some(p), _) => p.as_str(),
        (None, Some(p)) => p,
        (None, None) => return Err(format!("usage: {USAGE}")),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let scenario = SoakScenario::from_json(&text)?;

    let mut output = format!(
        "scenario: {} γ={} seed {} — suspect ops {}..={} ({})\n",
        scenario.config.algorithm.label(),
        scenario.config.algorithm.gamma(),
        scenario.config.seed,
        scenario.window_lo,
        scenario.window_hi,
        scenario.reason,
    );

    if args.has("shrink") {
        let outcome = shrink(&scenario)?;
        let default_out = format!("{path}.min.json");
        let out_path = args.get("out").unwrap_or(&default_out);
        crate::output::write_report(out_path, outcome.pinned.to_json())?;
        output.push_str(&format!(
            "shrunk in {} probes: first failing op is {} ({})\n\
             pinned one-op regression written to {out_path}\n",
            outcome.probes, outcome.failure.op, outcome.failure.reason,
        ));
        Ok(output)
    } else {
        match replay(&scenario).map_err(|e| e.to_string())? {
            Some(failure) => {
                output.push_str(&format!(
                    "reproduced: failure at op {} — {}\n\
                     shrink it with: cubefit replay {path} --shrink\n",
                    failure.op, failure.reason,
                ));
                Ok(output)
            }
            None => Err(format!(
                "{output}scenario did NOT reproduce: replay of ops 0..={} stayed clean",
                scenario.window_hi,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    /// Produces a scenario file by running an injected-fault soak.
    fn scenario_file(name: &str) -> String {
        let path = tmp(name);
        let args = ParsedArgs::parse([
            "soak",
            "--ops",
            "2000",
            "--seed",
            "11",
            "--checkpoint-every",
            "100",
            "--inject-at",
            "731",
            "--scenario-out",
            &path,
        ])
        .unwrap();
        assert!(super::super::soak::run(&args).is_err());
        path
    }

    #[test]
    fn replay_reproduces_the_recorded_failure() {
        let path = scenario_file("replay-scenario.json");
        let args = ParsedArgs::parse(["replay", &path]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("reproduced: failure at op 731"), "{out}");
    }

    #[test]
    fn shrink_writes_a_pinned_one_op_regression() {
        let path = scenario_file("shrink-scenario.json");
        let pinned_path = tmp("shrink-pinned.json");
        let args = ParsedArgs::parse(["replay", &path, "--shrink", "--out", &pinned_path]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("first failing op is 731"), "{out}");
        let pinned =
            SoakScenario::from_json(&std::fs::read_to_string(&pinned_path).unwrap()).unwrap();
        assert_eq!((pinned.window_lo, pinned.window_hi), (731, 731));
        // The pinned scenario replays standalone — the regression test.
        let args = ParsedArgs::parse(["replay", &pinned_path]).unwrap();
        assert!(run(&args).unwrap().contains("failure at op 731"));
    }

    #[test]
    fn stale_scenarios_are_rejected() {
        let path = scenario_file("stale-scenario.json");
        let mut scenario =
            SoakScenario::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // Disarm the injection: the window is now clean, so the repro is
        // stale and both replay and shrink must say so.
        scenario.config.inject_at = None;
        let stale = tmp("stale-disarmed.json");
        std::fs::write(&stale, scenario.to_json()).unwrap();
        let args = ParsedArgs::parse(["replay", &stale]).unwrap();
        assert!(run(&args).unwrap_err().contains("did NOT reproduce"));
        let args = ParsedArgs::parse(["replay", &stale, "--shrink"]).unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn rejects_missing_and_malformed_scenarios() {
        let args = ParsedArgs::parse(["replay"]).unwrap();
        assert!(run(&args).unwrap_err().contains("usage"));
        let bad = tmp("bad-scenario.json");
        std::fs::write(&bad, "{not json").unwrap();
        let args = ParsedArgs::parse(["replay", &bad]).unwrap();
        assert!(run(&args).unwrap_err().contains("bad scenario file"));
    }
}
