//! `cubefit serve` — overload-safe service-loop benchmark.
//!
//! Runs the deterministic DES load harness ([`cubefit_sim::serve`])
//! against a [`cubefit_service::PlacementService`]: open/closed-loop
//! clients, optional burst storm, adaptive admission control, and the
//! audit degradation ladder. Reports latency percentiles, goodput, and
//! shed rate; `--dump` writes the final placement for
//! `cubefit check --audit`.

use crate::args::ParsedArgs;
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_service::{LimiterSpec, ShutdownFlag};
use cubefit_sim::serve::{run_serve_journaled, run_serve_with, ServeConfig, StormProfile};

/// Flags accepted by `serve`.
pub const FLAGS: &[&str] = &[
    "bench",
    "algorithm",
    "gamma",
    "distribution",
    "seed",
    "storm",
    "horizon-ms",
    "rate",
    "clients",
    "depart",
    "update",
    "limiter",
    "deadline-ms",
    "slo-ms",
    "interrupt-at",
    "out",
    "dump",
    "metrics-out",
    "trace-out",
    "journal",
    "fsync",
    "checkpoint-batches",
];

/// Usage line shown in `--help`.
pub const USAGE: &str = "serve --bench [--seed S] [--storm] [--algorithm cubefit] [--gamma G] \
                         [--horizon-ms MS] [--rate R] [--clients N] [--depart PCT] \
                         [--update PCT] \
                         [--limiter aimd:4-64|gradient:4-64|fixed:N] [--deadline-ms MS] \
                         [--slo-ms MS] [--interrupt-at MS] [--out REPORT.json] \
                         [--dump PLACEMENT.json] [--metrics-out M.json] [--trace-out E.jsonl] \
                         [--journal DIR] [--fsync always|interval:N|never] \
                         [--checkpoint-batches N]";

/// Builds a [`ServeConfig`] from parsed flags.
pub(crate) fn config_from(args: &ParsedArgs) -> Result<ServeConfig, String> {
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    let mut config = ServeConfig::bench(seed, args.has("storm"));
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    if let Some(raw) = args.get("algorithm") {
        config.algorithm = spec_parse::parse_algorithm(raw, gamma)?;
    }
    if let Some(raw) = args.get("distribution") {
        config.distribution = spec_parse::parse_distribution(raw)?;
    }
    config.horizon_ms =
        args.get_or("horizon-ms", config.horizon_ms, "milliseconds").map_err(|e| e.to_string())?;
    config.open_rate_per_sec = args
        .get_or("rate", config.open_rate_per_sec, "requests per second")
        .map_err(|e| e.to_string())?;
    config.closed_clients =
        args.get_or("clients", config.closed_clients, "an integer").map_err(|e| e.to_string())?;
    config.depart_percent =
        args.get_or("depart", config.depart_percent, "a percentage").map_err(|e| e.to_string())?;
    config.update_percent =
        args.get_or("update", config.update_percent, "a percentage").map_err(|e| e.to_string())?;
    if let Some(raw) = args.get("limiter") {
        config.service.limiter = LimiterSpec::parse(raw)?;
    }
    config.service.deadline_ms = args
        .get_or("deadline-ms", config.service.deadline_ms, "milliseconds")
        .map_err(|e| e.to_string())?;
    config.service.slo_p99_ms = args
        .get_or("slo-ms", config.service.slo_p99_ms, "milliseconds")
        .map_err(|e| e.to_string())?;
    // Rescale the storm to the (possibly overridden) horizon so a short
    // smoke run still exercises the burst window.
    if args.has("storm") {
        config.storm = Some(StormProfile {
            start_ms: config.horizon_ms * 0.25,
            duration_ms: config.horizon_ms * 0.50,
            rate_multiplier: 4.0,
        });
    }
    config.interrupt_at_ms = match args.get("interrupt-at") {
        None => None,
        Some(_) => {
            Some(args.get_or("interrupt-at", 0.0f64, "milliseconds").map_err(|e| e.to_string())?)
        }
    };
    Ok(config)
}

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, invalid configurations, I/O failures,
/// or audit divergences on admitted mutations (scripted runs exit
/// non-zero).
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    if !args.has("bench") {
        return Err(format!("serve currently only supports the bench harness\nusage: {USAGE}"));
    }
    let config = config_from(args)?;
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    // A scripted interrupt gets a private flag so in-process tests don't
    // poison the global Ctrl-C flag; interactive runs hook the signal.
    let shutdown = if config.interrupt_at_ms.is_some() {
        ShutdownFlag::new()
    } else {
        ShutdownFlag::install()
    };
    let journal = super::journal_from(args, config.algorithm.gamma())?;
    let run = match &journal {
        Some(journal) => {
            let stride: u64 = args
                .get_or("checkpoint-batches", 256u64, "an integer")
                .map_err(|e| e.to_string())?;
            run_serve_journaled(config, recorder.clone(), journal, stride, &shutdown)
                .map_err(|e| e.to_string())?
        }
        None => {
            if args.has("checkpoint-batches") {
                return Err("--checkpoint-batches only applies to journaled runs \
                            (add --journal DIR)"
                    .to_string());
            }
            run_serve_with(config, recorder.clone(), &shutdown).map_err(|e| e.to_string())?
        }
    };
    recorder.flush()?;
    let report = &run.report;

    let mut output = String::new();
    let json = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    if let Some(path) = args.get("out") {
        crate::output::write_report(path, &json)?;
        output.push_str(&format!("serve report written to {path}\n"));
    } else {
        output.push_str(&json);
        output.push('\n');
    }
    if let Some(path) = args.get("dump") {
        let dump_json = serde_json::to_string_pretty(&run.dump).map_err(|e| e.to_string())?;
        crate::output::write_report(path, dump_json)?;
        output.push_str(&format!("placement dump written to {path} (audit with cubefit check)\n"));
    }
    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &recorder.snapshot())?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("serve trace written to {path}\n"));
    }
    if let Some(journal) = &journal {
        output.push_str(&format!(
            "journal sealed at seq {} in {}\n",
            journal.last_seq(),
            args.get("journal").unwrap_or_default()
        ));
    }
    output.push_str(&format!(
        "{} behind {} (seed {}{}{}): {}/{} completed in {:.0}ms — \
         p50 {:.1}ms p99 {:.1}ms p999 {:.1}ms, goodput {:.1}/s; \
         shed {} ({:.1}%), queue-full {}, deadline {}; \
         {} audits ({} divergences), ladder -{}/+{} ending {}; \
         final: limit {}, {} tenants on {} bins, robust {}\n",
        report.algorithm,
        report.limiter,
        report.seed,
        if report.storm { ", storm" } else { "" },
        if report.interrupted { ", INTERRUPTED" } else { "" },
        report.completed,
        report.offered,
        report.duration_ms,
        report.latency.p50_ms,
        report.latency.p99_ms,
        report.latency.p999_ms,
        report.goodput_per_sec,
        report.shed,
        report.shed_rate * 100.0,
        report.queue_full,
        report.deadline_expired,
        report.audits,
        report.audit_divergences,
        report.ladder_down,
        report.ladder_up,
        report.final_audit_mode,
        report.final_limit,
        report.tenants,
        report.bins,
        report.robust,
    ));

    if report.audit_divergences > 0 {
        return Err(format!(
            "{output}serve FAILED: {} audit divergences on admitted mutations",
            report.audit_divergences
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::PlacementDump;
    use cubefit_sim::serve::ServeReport;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn bench_run_writes_report_and_auditable_dump() {
        let out_path = tmp("serve-report.json");
        let dump_path = tmp("serve-dump.json");
        let args = ParsedArgs::parse([
            "serve",
            "--bench",
            "--seed",
            "7",
            "--horizon-ms",
            "2000",
            "--rate",
            "150",
            "--update",
            "0",
            "--out",
            &out_path,
            "--dump",
            &dump_path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("serve report written to"), "{out}");
        let report: ServeReport =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert!(report.completed > 0);
        assert_eq!(report.audit_divergences, 0);
        assert!(!report.interrupted);

        // The dump must replay clean through `cubefit check --audit`.
        let check_args = ParsedArgs::parse(["check", &dump_path, "--audit"]).unwrap();
        let check_out = super::super::check::run(&check_args).unwrap();
        assert!(check_out.contains("audit"), "{check_out}");
    }

    #[test]
    fn storm_sheds_and_reports_it() {
        let args = ParsedArgs::parse([
            "serve",
            "--bench",
            "--storm",
            "--seed",
            "11",
            "--horizon-ms",
            "4000",
            "--rate",
            "250",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let report: ServeReport =
            serde_json::from_str(&out[..out.rfind('}').unwrap() + 1]).unwrap();
        assert!(report.storm);
        assert!(report.shed > 0, "storm must shed: {out}");
        assert_eq!(report.audit_divergences, 0);
    }

    /// Satellite: an interrupted serve run still writes parseable JSON —
    /// both the partial report and a dump that rebuilds a placement.
    #[test]
    fn interrupted_run_still_writes_parseable_json() {
        let out_path = tmp("serve-interrupted.json");
        let dump_path = tmp("serve-interrupted-dump.json");
        let args = ParsedArgs::parse([
            "serve",
            "--bench",
            "--seed",
            "3",
            "--horizon-ms",
            "10000",
            "--interrupt-at",
            "1500",
            "--out",
            &out_path,
            "--dump",
            &dump_path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("INTERRUPTED"), "{out}");
        let report: ServeReport =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert!(report.interrupted);
        assert!(report.duration_ms < 10_000.0);
        let dump: PlacementDump =
            serde_json::from_str(&std::fs::read_to_string(&dump_path).unwrap()).unwrap();
        dump.to_placement().unwrap();
    }

    #[test]
    fn rejects_unknown_flags_missing_bench_and_bad_limiters() {
        let args = ParsedArgs::parse(["serve", "--frobnicate", "1"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["serve"]).unwrap();
        assert!(run(&args).unwrap_err().contains("--bench"), "must point at --bench");
        let args = ParsedArgs::parse(["serve", "--bench", "--limiter", "quantum:1-2"]).unwrap();
        assert!(run(&args).is_err());
    }
}
