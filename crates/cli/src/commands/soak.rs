//! `cubefit soak` — long-horizon audited soak runs with shrinking repros.

use crate::args::ParsedArgs;
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_service::ShutdownFlag;
use cubefit_sim::soak::{run_soak_cancellable, run_soak_crashed, run_soak_journaled, SoakConfig};

/// Flags accepted by `soak`.
pub const FLAGS: &[&str] = &[
    "algorithm",
    "gamma",
    "distribution",
    "ops",
    "seed",
    "departures",
    "failures",
    "max-failures",
    "audit-every",
    "checkpoint-every",
    "defrag-every",
    "defrag-moves",
    "defrag-load",
    "drift",
    "profile",
    "mitigate-every",
    "mitigate-moves",
    "mitigate-load",
    "slack",
    "inject-at",
    "fail-on-violation",
    "out",
    "scenario-out",
    "metrics-out",
    "trace-out",
    "journal",
    "fsync",
    "crash-at",
];

/// Usage line shown in `--help`.
pub const USAGE: &str = "soak [--algorithm cubefit] [--gamma G] [--ops N] [--seed S] \
                         [--departures PCT] [--failures PCT] [--audit-every N] \
                         [--checkpoint-every N] [--defrag-every N] [--drift] \
                         [--inject-at OP] [--fail-on-violation BOOL] [--out REPORT.json] \
                         [--scenario-out SCENARIO.json] [--metrics-out M.json] \
                         [--trace-out EVENTS.jsonl] [--journal DIR] \
                         [--fsync always|interval:N|never] [--crash-at OP]";

/// Builds a [`SoakConfig`] from parsed flags (shared with `replay`'s
/// documentation of the scenario format).
pub(crate) fn config_from(args: &ParsedArgs) -> Result<SoakConfig, String> {
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let algorithm = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;
    let distribution =
        spec_parse::parse_distribution(args.get("distribution").unwrap_or("uniform:1-15"))?;
    let ops: u64 = args.get_or("ops", 100_000u64, "an integer").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    let mut config = SoakConfig::steady(algorithm, ops, seed);
    config.distribution = distribution;
    config.departure_percent = args
        .get_or("departures", config.departure_percent, "a percentage")
        .map_err(|e| e.to_string())?;
    config.failure_percent = args
        .get_or("failures", config.failure_percent, "a percentage")
        .map_err(|e| e.to_string())?;
    if config.departure_percent + config.failure_percent > 100 {
        return Err(format!(
            "--departures {} plus --failures {} exceeds 100%",
            config.departure_percent, config.failure_percent
        ));
    }
    config.max_failures = args
        .get_or("max-failures", config.max_failures, "an integer")
        .map_err(|e| e.to_string())?;
    if config.max_failures >= config.algorithm.gamma() {
        return Err(format!(
            "--max-failures {} would breach availability: at most γ−1 = {} servers may fail \
             per event",
            config.max_failures,
            config.algorithm.gamma() - 1
        ));
    }
    config.audit_every =
        args.get_or("audit-every", config.audit_every, "an integer").map_err(|e| e.to_string())?;
    config.checkpoint_every = args
        .get_or("checkpoint-every", config.checkpoint_every, "an integer")
        .map_err(|e| e.to_string())?;
    config.defrag_every =
        args.get_or("defrag-every", 0u64, "an integer").map_err(|e| e.to_string())?;
    config.defrag_budget = super::churn::budget_from(args)?;
    config.drift = if args.has("drift") { Some(super::churn::drift_from(args)?) } else { None };
    config.inject_at = match args.get("inject-at") {
        None => None,
        Some(_) => Some(args.get_or("inject-at", 0u64, "an op index").map_err(|e| e.to_string())?),
    };
    // Drifted runs expect transient violations (mitigation trails the
    // drift), so only static-load runs fail on one by default.
    config.fail_on_violation = args
        .get_or("fail-on-violation", config.drift.is_none(), "true or false")
        .map_err(|e| e.to_string())?;
    Ok(config)
}

/// Runs the command. A clean soak returns its report; a soak that detects
/// an audit failure or invariant violation writes the replayable scenario
/// file and returns an error so scripted runs exit non-zero.
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, I/O failures — or a failed
/// soak (after writing the scenario file).
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let config = config_from(args)?;
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    let journal = super::journal_from(args, config.algorithm.gamma())?;
    let crash_at = match args.get("crash-at") {
        None => None,
        Some(_) => Some(args.get_or("crash-at", 0u64, "an op index").map_err(|e| e.to_string())?),
    };
    let report = match (&journal, crash_at) {
        (None, Some(_)) => {
            return Err("--crash-at only applies to journaled runs (add --journal DIR)".to_string())
        }
        (None, None) => run_soak_cancellable(&config, recorder.clone(), &ShutdownFlag::install())
            .map_err(|e| e.to_string())?,
        (Some(journal), None) => {
            // Ctrl-C trips the flag; the run drains, fsyncs, and seals the
            // journal before the partial report is written.
            run_soak_journaled(&config, recorder.clone(), journal, Some(&ShutdownFlag::install()))
                .map_err(|e| e.to_string())?
        }
        (Some(journal), Some(crash_at)) => {
            // CI crash drill: stop dead without sealing, as a kill -9 would.
            run_soak_crashed(&config, journal, crash_at).map_err(|e| e.to_string())?
        }
    };
    recorder.flush()?;

    let mut output = String::new();
    let json = report.to_json();
    if let Some(path) = args.get("out") {
        crate::output::write_report(path, &json)?;
        output.push_str(&format!("soak report written to {path}\n"));
    } else {
        output.push_str(&json);
        output.push('\n');
    }
    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &recorder.snapshot())?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("soak trace written to {path}\n"));
    }
    if let Some(journal) = &journal {
        let dir = args.get("journal").unwrap_or_default();
        if crash_at.is_some() {
            output.push_str(&format!(
                "journal left UNSEALED at seq {} in {dir} (crash drill) — \
                 reconstruct with: cubefit recover {dir}\n",
                journal.last_seq()
            ));
        } else {
            output.push_str(&format!("journal sealed at seq {} in {dir}\n", journal.last_seq()));
        }
    }
    output.push_str(&format!(
        "{} (seed {}): {}/{} ops — {} arrivals, {} departures, {} failure events; \
         {} audits ({} failed), {} checkpoints, {} violations; \
         final: {} tenants on {} bins, fragmentation {:.3}, robust {}\n",
        report.algorithm,
        report.seed,
        report.ops_run,
        report.ops_requested,
        report.arrivals,
        report.departures,
        report.failure_events,
        report.audits,
        report.audit_failures,
        report.checkpoints,
        report.violations,
        report.final_tenants,
        report.final_open_bins,
        report.final_fragmentation,
        report.robust,
    ));

    match (&report.failure, &report.scenario) {
        (Some(failure), Some(scenario)) => {
            let path = args.get("scenario-out").unwrap_or("cubefit-soak-scenario.json");
            crate::output::write_report(path, scenario.to_json())?;
            Err(format!(
                "{output}soak FAILED at op {}: {}\n\
                 replayable scenario (ops {}..={}) written to {path}\n\
                 shrink it with: cubefit replay {path} --shrink",
                failure.op, failure.reason, scenario.window_lo, scenario.window_hi,
            ))
        }
        _ => Ok(output),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_sim::soak::{SoakReport, SoakScenario};

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn clean_soak_reports_audits_and_checkpoints() {
        let out_path = tmp("soak-report.json");
        let args = ParsedArgs::parse([
            "soak",
            "--ops",
            "1500",
            "--seed",
            "11",
            "--audit-every",
            "300",
            "--checkpoint-every",
            "150",
            "--out",
            &out_path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("soak report written to"), "{out}");
        assert!(out.contains("robust true"), "{out}");
        let report: SoakReport =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(report.ops_run, 1500);
        assert!(report.failure.is_none());
        assert_eq!(report.final_audit_divergences, Some(0));
        assert!(report.audits >= 5);
    }

    #[test]
    fn injected_fault_writes_scenario_and_fails_the_command() {
        let scenario_path = tmp("soak-scenario.json");
        let args = ParsedArgs::parse([
            "soak",
            "--ops",
            "2000",
            "--seed",
            "11",
            "--checkpoint-every",
            "100",
            "--inject-at",
            "731",
            "--scenario-out",
            &scenario_path,
        ])
        .unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("soak FAILED"), "{err}");
        assert!(err.contains("replayable scenario"), "{err}");
        let scenario =
            SoakScenario::from_json(&std::fs::read_to_string(&scenario_path).unwrap()).unwrap();
        assert!(scenario.window_lo <= 731 && 731 <= scenario.window_hi);
        assert_eq!(scenario.config.inject_at, Some(731));
    }

    #[test]
    fn rejects_unknown_flags_and_bad_mixes() {
        let args = ParsedArgs::parse(["soak", "--frobnicate", "1"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["soak", "--departures", "80", "--failures", "30"]).unwrap();
        assert!(run(&args).unwrap_err().contains("exceeds 100%"));
        // The journal-only flags demand a journal.
        let args = ParsedArgs::parse(["soak", "--ops", "10", "--crash-at", "5"]).unwrap();
        assert!(run(&args).unwrap_err().contains("--journal"));
        let args = ParsedArgs::parse(["soak", "--ops", "10", "--fsync", "never"]).unwrap();
        assert!(run(&args).unwrap_err().contains("--journal"));
    }

    fn journal_dir(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-soak-journal").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn journaled_soak_seals_and_recovers_clean() {
        let dir = journal_dir("sealed");
        let args = ParsedArgs::parse([
            "soak",
            "--ops",
            "800",
            "--seed",
            "5",
            "--checkpoint-every",
            "200",
            "--journal",
            &dir,
            "--fsync",
            "never",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("journal sealed at seq"), "{out}");
        let recovered =
            super::super::recover::run(&ParsedArgs::parse(["recover", &dir, "--audit"]).unwrap())
                .unwrap();
        assert!(recovered.contains("clean (journal sealed)"), "{recovered}");
        assert!(recovered.contains("audit: oracle agrees"), "{recovered}");
    }

    /// The CI crash drill end-to-end: a journaled soak stopped dead at an
    /// arbitrary op leaves an unsealed journal, and
    /// `cubefit recover --audit --out` reconstructs an audit-clean dump
    /// that `cubefit check --audit` accepts.
    #[test]
    fn crash_at_leaves_an_unsealed_journal_that_recovers() {
        let dir = journal_dir("crash");
        let args = ParsedArgs::parse([
            "soak",
            "--ops",
            "2000",
            "--seed",
            "11",
            "--checkpoint-every",
            "150",
            "--journal",
            &dir,
            "--crash-at",
            "731",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("journal left UNSEALED"), "{out}");
        assert!(out.contains("cubefit recover"), "{out}");
        let dump_path = format!("{dir}/recovered.json");
        let recovered = super::super::recover::run(
            &ParsedArgs::parse(["recover", &dir, "--audit", "--out", &dump_path]).unwrap(),
        )
        .unwrap();
        assert!(recovered.contains("UNCLEAN"), "{recovered}");
        assert!(recovered.contains("audit: oracle agrees"), "{recovered}");
        let check = super::super::check::run(
            &ParsedArgs::parse(["check", dump_path.as_str(), "--audit"]).unwrap(),
        )
        .unwrap();
        assert!(check.contains("oracle agrees"), "{check}");
    }
}
