//! `cubefit generate` — produce a binary workload trace.

use crate::args::ParsedArgs;
use cubefit_workload::trace;

/// Flags accepted by `generate`.
pub const FLAGS: &[&str] = &["distribution", "tenants", "seed", "model", "max-clients", "out"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "generate --out TRACE [--distribution uniform:1-15|zipf:3|constant:8] \
                         [--tenants N] [--seed S] [--model tpch|normalized] [--max-clients C]";

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let sequence = super::sequence_from(args)?;
    let bytes = trace::encode(&sequence);
    crate::output::write_report(out, &bytes)?;
    Ok(format!(
        "wrote {} tenants ({} bytes, total load {:.1}) to {out}\n",
        sequence.len(),
        bytes.len(),
        sequence.total_load()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn writes_a_decodable_trace() {
        let path = tmp("gen.cft");
        let args = ParsedArgs::parse([
            "generate",
            "--out",
            &path,
            "--tenants",
            "25",
            "--distribution",
            "zipf:3",
            "--seed",
            "9",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("25 tenants"));
        let bytes = std::fs::read(&path).unwrap();
        let decoded = trace::decode(&bytes[..]).unwrap();
        assert_eq!(decoded.len(), 25);
    }

    #[test]
    fn requires_out_flag() {
        let args = ParsedArgs::parse(["generate", "--tenants", "5"]).unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let args = ParsedArgs::parse(["generate", "--out", "x", "--bogus", "1"]).unwrap();
        assert!(run(&args).unwrap_err().contains("bogus"));
    }
}
