//! `cubefit drift` — load-drift robustness runs: online re-estimation,
//! invariant monitoring, and budgeted mitigation.
//!
//! The command drives a churn run in which every tenant's load drifts
//! between ops (`--profile walk:N` or `--profile burst:m=M,p=P`), the
//! invariant monitor flags servers whose Theorem-1 margin goes negative,
//! and — at the `--mitigate-every` stride — a mitigation epoch drains
//! flagged servers under the `--mitigate-moves` / `--mitigate-load`
//! budget, degrading gracefully to an explicit residual-risk report when
//! the budget runs out. With `--audit` every mutation (placements, load
//! updates *and* mitigation migrations) is replayed against the
//! from-scratch oracle.

use crate::args::ParsedArgs;
use crate::commands::churn::drift_from;
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_service::ShutdownFlag;
use cubefit_sim::churn::{run_churn_cancellable, ChurnConfig, ChurnReport};

/// Flags accepted by `drift`.
pub const FLAGS: &[&str] = &[
    "algorithm",
    "gamma",
    "distribution",
    "ops",
    "seed",
    "departures",
    "profile",
    "mitigate-every",
    "mitigate-moves",
    "mitigate-load",
    "slack",
    "audit",
    "out",
    "metrics-out",
    "trace-out",
];

/// Usage line shown in `--help`.
pub const USAGE: &str = "drift [--algorithm cubefit] [--gamma G] [--distribution uniform:1-15] \
                         [--ops N] [--seed S] [--departures PCT] \
                         [--profile burst:m=20,p=0.01] [--mitigate-every N] \
                         [--mitigate-moves M] [--mitigate-load L] [--slack S] [--audit] \
                         [--out REPORT.json] [--metrics-out METRICS.json] \
                         [--trace-out EVENTS.jsonl]";

/// Runs the command, returning the JSON churn report (or a drift-focused
/// summary when `--out` redirects the report to a file).
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let algorithm = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;
    let distribution =
        spec_parse::parse_distribution(args.get("distribution").unwrap_or("uniform:1-15"))?;
    let ops: usize = args.get_or("ops", 300usize, "an integer").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    let departure_percent: u32 =
        args.get_or("departures", 15u32, "a percentage").map_err(|e| e.to_string())?;
    if departure_percent > 100 {
        return Err(format!("--departures {departure_percent} exceeds 100%"));
    }

    let config = ChurnConfig {
        algorithm,
        distribution,
        ops,
        seed,
        departure_percent,
        // Drift runs isolate the drift failure mode: no server failures.
        failure_percent: 0,
        max_failures: 1,
        audit: args.has("audit"),
        defrag_every: 0,
        defrag_budget: cubefit_defrag::MigrationBudget::default(),
        defrag_objective: cubefit_defrag::DefragObjective::Bins,
        drift: Some(drift_from(args)?),
        rent: None,
    };
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    let report = run_churn_cancellable(&config, recorder.clone(), &ShutdownFlag::install())
        .map_err(|e| e.to_string())?;
    recorder.flush()?;

    let json = report.to_json();
    let mut output = String::new();
    if let Some(path) = args.get("out") {
        crate::output::write_report(path, &json)?;
        output.push_str(&summary(&report));
        output.push_str(&format!("drift report written to {path}\n"));
    } else {
        output.push_str(&json);
        output.push('\n');
    }
    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &recorder.snapshot())?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("decision trace written to {path}\n"));
    }
    Ok(output)
}

/// Drift-focused human summary of a run.
fn summary(report: &ChurnReport) -> String {
    let mut text = format!(
        "{} (seed {}): {} arrivals, {} departures; {} load updates drifted, \
         {} invariant violations detected\n",
        report.algorithm,
        report.seed,
        report.arrivals,
        report.departures,
        report.drift_updates,
        report.drift_violations,
    );
    if report.mitigation_epochs.is_empty() {
        text.push_str("mitigation: off\n");
    } else {
        text.push_str(&format!(
            "mitigation: {} epochs cured {} servers\n",
            report.mitigation_epochs.len(),
            report.servers_cured_by_mitigation,
        ));
    }
    text.push_str(&format!(
        "final: {} tenants on {} bins, {} violated / {} at risk; robust: {}\n",
        report.final_tenants,
        report.final_open_bins,
        report.final_violated,
        report.final_at_risk,
        report.robust,
    ));
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn unmitigated_burst_drift_breaks_the_invariant() {
        let args = ParsedArgs::parse(["drift", "--ops", "200", "--seed", "31", "--audit"]).unwrap();
        let out = run(&args).unwrap();
        let report: ChurnReport = serde_json::from_str(&out).unwrap();
        assert!(report.drift_updates > 0);
        assert!(report.drift_violations > 0, "seed 31 must drift into violation");
        assert!(report.final_violated > 0 && !report.robust);
        assert!(report.mitigation_epochs.is_empty(), "mitigation defaults to off");
    }

    #[test]
    fn mitigated_run_cures_violations_and_prints_summary() {
        let path = tmp("drift-report.json");
        let args = ParsedArgs::parse([
            "drift",
            "--ops",
            "200",
            "--seed",
            "31",
            "--mitigate-every",
            "10",
            "--audit",
            "--out",
            &path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("invariant violations detected"), "{out}");
        assert!(out.contains("mitigation:"), "{out}");
        assert!(out.contains("drift report written to"), "{out}");
        let report: ChurnReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!report.mitigation_epochs.is_empty());
        assert!(report.servers_cured_by_mitigation > 0);
        assert_eq!(report.final_violated, 0, "unlimited budget must clear every violation");
    }

    #[test]
    fn mitigation_budget_caps_epochs() {
        let args = ParsedArgs::parse([
            "drift",
            "--ops",
            "150",
            "--seed",
            "31",
            "--mitigate-every",
            "10",
            "--mitigate-moves",
            "2",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let report: ChurnReport = serde_json::from_str(&out).unwrap();
        for epoch in &report.mitigation_epochs {
            assert!(epoch.planned_steps <= 2, "budget of 2 moves exceeded");
        }
    }

    #[test]
    fn walk_profile_and_slack_are_accepted() {
        let args =
            ParsedArgs::parse(["drift", "--ops", "80", "--profile", "walk:3", "--slack", "0.1"])
                .unwrap();
        let out = run(&args).unwrap();
        let report: ChurnReport = serde_json::from_str(&out).unwrap();
        assert!(report.drift_updates > 0, "a walk of step 3 must move some loads");
    }

    #[test]
    fn rejects_bad_flags_profiles_and_slack() {
        let args = ParsedArgs::parse(["drift", "--frobnicate", "1"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["drift", "--profile", "tides"]).unwrap();
        assert!(run(&args).unwrap_err().contains("unknown drift profile"));
        let args = ParsedArgs::parse(["drift", "--slack", "1.5"]).unwrap();
        assert!(run(&args).unwrap_err().contains("must lie in [0, 1)"));
    }
}
