//! `cubefit defrag` — plan and apply robustness-preserving
//! defragmentation on a seeded fragmentation scenario.
//!
//! The command drives a churn run (by default departure-heavy, so the
//! placement ends fragmented), then computes a [`cubefit_defrag::DefragPlan`]
//! under the `--defrag-moves` / `--defrag-load` budget and — unless
//! `--dry-run` is given — applies it through the live consolidator,
//! re-checking every migration and rolling back atomically on infeasibility.
//! With `--audit` every mutation (churn *and* migration) is replayed
//! against the from-scratch oracle.

use crate::args::ParsedArgs;
use crate::commands::churn::{budget_from, objective_from, rent_from};
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_defrag::{DefragObjective, DefragOutcome};
use cubefit_economics::LeaseLedger;
use cubefit_sim::churn::{run_churn_consolidator, ChurnConfig};

/// Flags accepted by `defrag`.
pub const FLAGS: &[&str] = &[
    "algorithm",
    "gamma",
    "distribution",
    "ops",
    "seed",
    "departures",
    "failures",
    "defrag-moves",
    "defrag-load",
    "dry-run",
    "audit",
    "rent",
    "block-ms",
    "hourly-usd",
    "ms-per-op",
    "horizon-ms",
    "objective",
    "out",
    "metrics-out",
    "trace-out",
];

/// Usage line shown in `--help`.
pub const USAGE: &str = "defrag [--algorithm cubefit] [--gamma G] [--distribution uniform:1-15] \
                         [--ops N] [--seed S] [--departures PCT] [--failures PCT] \
                         [--defrag-moves M] [--defrag-load L] [--dry-run] [--audit] \
                         [--rent] [--block-ms MS] [--hourly-usd USD] [--ms-per-op MS] \
                         [--horizon-ms MS] [--objective bins|cost] \
                         [--out REPORT.json] [--metrics-out METRICS.json] \
                         [--trace-out EVENTS.jsonl]";

/// Runs the command, returning a combined JSON document (scenario, plan,
/// outcome, fragmentation before/after) or a summary when `--out`
/// redirects the document to a file.
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let algorithm = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;
    let distribution =
        spec_parse::parse_distribution(args.get("distribution").unwrap_or("uniform:1-15"))?;
    let ops: usize = args.get_or("ops", 400usize, "an integer").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    // Departure-heavy defaults: defrag is only interesting once churn has
    // stranded low-fill servers.
    let departure_percent: u32 =
        args.get_or("departures", 40u32, "a percentage").map_err(|e| e.to_string())?;
    let failure_percent: u32 =
        args.get_or("failures", 0u32, "a percentage").map_err(|e| e.to_string())?;
    if departure_percent + failure_percent > 100 {
        return Err(format!(
            "--departures {departure_percent} plus --failures {failure_percent} exceeds 100%"
        ));
    }
    let budget = budget_from(args)?;
    let dry_run = args.has("dry-run");
    let rent = rent_from(args)?;
    let objective = objective_from(args, rent.as_ref())?;

    let config = ChurnConfig {
        algorithm,
        distribution,
        ops,
        seed,
        departure_percent,
        failure_percent,
        max_failures: 1,
        audit: args.has("audit"),
        defrag_every: 0,
        defrag_budget: cubefit_defrag::MigrationBudget::default(),
        defrag_objective: cubefit_defrag::DefragObjective::Bins,
        drift: None,
        rent,
    };
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    let (report, mut consolidator) =
        run_churn_consolidator(&config, recorder.clone()).map_err(|e| e.to_string())?;

    // With the cost objective, plan against fresh leases opened at plan
    // time: every surviving server holds one paid rental block from now,
    // so a drain pays off only when the horizon reaches past it. (The
    // churn phase above accrues its own ledger into `report.cost`; this
    // one prices the standalone plan.)
    let (plan, outcome): (cubefit_defrag::DefragPlan, Option<DefragOutcome>) = match objective {
        DefragObjective::Bins => {
            let plan = cubefit_defrag::plan(consolidator.placement(), budget);
            let outcome = if dry_run {
                None
            } else {
                Some(
                    cubefit_defrag::apply(&mut *consolidator, &plan, &recorder)
                        .map_err(|e| e.to_string())?,
                )
            };
            (plan, outcome)
        }
        DefragObjective::Cost { horizon_ms } => {
            let rent = rent.expect("objective_from enforces --rent for the cost objective");
            let mut ledger = LeaseLedger::new(rent.terms);
            let now = ops as u64 * rent.ms_per_op;
            ledger.advance(
                now,
                consolidator.placement().bins().filter(|b| b.level() > 0.0).map(|b| b.id()),
            );
            let plan = cubefit_defrag::plan_economic(
                consolidator.placement(),
                budget,
                &ledger,
                &rent.pricing,
                horizon_ms,
            );
            let outcome = if dry_run {
                None
            } else {
                Some(
                    cubefit_defrag::apply_economic(
                        &mut *consolidator,
                        &plan,
                        &ledger,
                        &rent.pricing,
                        &recorder,
                    )
                    .map_err(|e| e.to_string())?,
                )
            };
            (plan, outcome)
        }
    };
    recorder.flush()?;
    let after = consolidator.placement().fragmentation();
    let robust = consolidator.placement().is_robust();

    let document = serde_json::json!({
        "algorithm": report.algorithm.clone(),
        "gamma": report.gamma,
        "seed": report.seed,
        "ops": ops,
        "dry_run": dry_run,
        "churn_arrivals": report.arrivals,
        "churn_departures": report.departures,
        "plan": plan,
        "outcome": outcome,
        "fragmentation_after": after,
        "robust": robust,
        "churn_cost": report.cost,
    });
    let json =
        serde_json::to_string_pretty(&document).map_err(|e| format!("encoding report: {e}"))?;

    let mut output = String::new();
    if let Some(path) = args.get("out") {
        crate::output::write_report(path, &json)?;
        output.push_str(&summary(&report.algorithm, report.seed, &plan, outcome.as_ref(), robust));
        output.push_str(&format!("defrag report written to {path}\n"));
    } else {
        output.push_str(&json);
        output.push('\n');
    }
    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &recorder.snapshot())?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("decision trace written to {path}\n"));
    }
    Ok(output)
}

/// One-paragraph human summary of a plan/apply round.
fn summary(
    algorithm: &str,
    seed: u64,
    plan: &cubefit_defrag::DefragPlan,
    outcome: Option<&DefragOutcome>,
    robust: bool,
) -> String {
    let mut text = format!(
        "{algorithm} (seed {seed}): planned {} migrations ({:.3} load) closing {} of {} bins, \
         fragmentation ratio {:.2} -> {:.2}\n",
        plan.steps.len(),
        plan.moved_load,
        plan.servers_closed(),
        plan.open_bins_before,
        plan.fragmentation_before.fragmentation_ratio,
        plan.fragmentation_after.fragmentation_ratio,
    );
    if let Some(forecast) = &plan.economics {
        text.push_str(&format!(
            "cost objective: predicted net saving ${:.4} over a {} ms horizon \
             ({} unprofitable drain(s) skipped)\n",
            forecast.net_usd, forecast.horizon_ms, forecast.skipped_unprofitable,
        ));
    }
    match outcome {
        None => text.push_str("dry-run: plan not applied\n"),
        Some(o) if o.aborted => text.push_str(&format!(
            "aborted at step {} and rolled back; placement unchanged; robust: {robust}\n",
            o.aborted_at.unwrap_or(0),
        )),
        Some(o) => text.push_str(&format!(
            "applied {} migrations, closed {} servers; robust: {robust}\n",
            o.applied_steps, o.servers_closed,
        )),
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_defrag::DefragPlan;
    use serde_json::Value;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn field<'a>(doc: &'a Value, key: &str) -> &'a Value {
        let Value::Object(map) = doc else { panic!("expected object") };
        map.get(key).unwrap_or_else(|| panic!("missing field {key}"))
    }

    #[test]
    fn audited_defrag_closes_servers_on_fragmented_scenario() {
        let args = ParsedArgs::parse([
            "defrag",
            "--ops",
            "300",
            "--seed",
            "17",
            "--departures",
            "40",
            "--defrag-moves",
            "64",
            "--audit",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        let outcome: DefragOutcome = serde_json::from_value(field(&doc, "outcome")).unwrap();
        assert!(outcome.servers_closed >= 1, "expected at least one closed server: {out}");
        assert!(!outcome.aborted);
        assert_eq!(field(&doc, "robust"), &Value::Bool(true));
        let plan: DefragPlan = serde_json::from_value(field(&doc, "plan")).unwrap();
        assert!(plan.open_bins_after < plan.open_bins_before);
    }

    #[test]
    fn dry_run_plans_without_applying() {
        let args = ParsedArgs::parse([
            "defrag",
            "--ops",
            "300",
            "--seed",
            "17",
            "--departures",
            "40",
            "--dry-run",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        assert_eq!(field(&doc, "dry_run"), &Value::Bool(true));
        assert_eq!(field(&doc, "outcome"), &Value::Null);
        let plan: DefragPlan = serde_json::from_value(field(&doc, "plan")).unwrap();
        assert!(!plan.is_empty(), "the fragmented scenario should yield a non-empty plan");
        // The placement was left untouched, so the live fragmentation
        // statistics must match the plan's *before* snapshot.
        assert_eq!(
            field(&doc, "fragmentation_after"),
            &serde_json::to_value(&plan.fragmentation_before).unwrap(),
        );
    }

    #[test]
    fn migration_budget_caps_the_plan() {
        let args = ParsedArgs::parse([
            "defrag",
            "--ops",
            "300",
            "--seed",
            "17",
            "--departures",
            "40",
            "--defrag-moves",
            "2",
            "--dry-run",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        let plan: DefragPlan = serde_json::from_value(field(&doc, "plan")).unwrap();
        assert!(plan.steps.len() <= 2, "budget of 2 moves exceeded: {} steps", plan.steps.len());
        assert_eq!(plan.budget.max_moves, Some(2));
    }

    #[test]
    fn out_flag_writes_document_and_prints_summary() {
        let path = tmp("defrag-report.json");
        let args = ParsedArgs::parse([
            "defrag",
            "--ops",
            "300",
            "--seed",
            "17",
            "--departures",
            "40",
            "--out",
            &path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("(seed 17): planned"), "{out}");
        assert!(out.contains("fragmentation ratio"), "{out}");
        assert!(out.contains("defrag report written to"), "{out}");
        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(field(&doc, "dry_run"), &Value::Bool(false));
    }

    #[test]
    fn rejects_unknown_flags_and_overweight_mix() {
        let args = ParsedArgs::parse(["defrag", "--frobnicate", "1"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["defrag", "--departures", "80", "--failures", "30"]).unwrap();
        assert!(run(&args).unwrap_err().contains("exceeds 100%"));
    }
}
