//! `cubefit recover` — rebuild a placement from a write-ahead journal.
//!
//! The repair half of `--journal`: point it at the journal directory a
//! crashed (or cleanly finished) run left behind and it reconstructs the
//! placement from the latest checkpoint plus the journal tail, reports
//! whether the shutdown was clean, and optionally audits the result
//! against the differential oracle and writes the dump for
//! `cubefit check`.

use crate::args::ParsedArgs;
use cubefit_core::oracle;
use cubefit_durability::recover;

/// Flags accepted by `recover`.
pub const FLAGS: &[&str] = &["out", "audit"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "recover JOURNAL_DIR [--out PLACEMENT.json] [--audit]";

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, a missing or corrupt journal (frame
/// corruption names the byte offset), I/O failures, or — under `--audit`
/// — a recovered placement the oracle disagrees with.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let dir = args.positional.first().ok_or_else(|| format!("usage: {USAGE}"))?;
    let state = recover(dir).map_err(|e| format!("recovering {dir}: {e}"))?;

    let mut output = String::new();
    output.push_str(&format!(
        "recovered γ={} placement from {dir}: checkpoint seq {}, {} frames replayed, \
         last seq {}\n",
        state.gamma, state.checkpoint_seq, state.frames_replayed, state.last_seq
    ));
    output.push_str(&format!(
        "shutdown was {}{}\n",
        if state.sealed {
            "clean (journal sealed)"
        } else {
            "UNCLEAN (journal not sealed — crash or kill)"
        },
        if state.torn_tail { "; torn final frame discarded" } else { "" }
    ));
    for warning in &state.warnings {
        output.push_str(&format!("warning: {warning}\n"));
    }
    let stats = state.placement.stats();
    output.push_str(&format!(
        "{} tenants on {} servers, utilization {:.1}%\n",
        stats.tenants,
        stats.open_bins,
        stats.mean_utilization * 100.0
    ));

    if args.has("audit") {
        match oracle::audit(&state.placement) {
            Ok(()) => output.push_str(&format!(
                "audit: oracle agrees with the recovered bookkeeping ({} tenants)\n",
                stats.tenants
            )),
            Err(divergences) => {
                let mut msg =
                    format!("{output}audit: recovered placement diverges from the oracle:\n");
                for d in &divergences {
                    msg.push_str(&format!("  {d}\n"));
                }
                return Err(msg);
            }
        }
    }

    if let Some(path) = args.get("out") {
        let json = serde_json::to_string(&state.dump()).map_err(|e| e.to_string())?;
        crate::output::write_report(path, &json)?;
        output.push_str(&format!(
            "recovered placement dump written to {path} (verify with cubefit check)\n"
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant, TenantId};
    use cubefit_durability::{FsyncPolicy, Journal, JournaledConsolidator};

    fn journal_dir(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-recover-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    /// Runs a small journaled workload and drops it without sealing — the
    /// on-disk shape of a crashed process.
    fn crashed_run(dir: &str) -> String {
        let journal = Journal::create(dir, 2, FsyncPolicy::Never).unwrap();
        let inner = Box::new(CubeFit::new(
            CubeFitConfig::builder().replication(2).classes(5).build().unwrap(),
        ));
        let mut journaled = JournaledConsolidator::new(inner, journal);
        for id in 0..12u64 {
            journaled.place(Tenant::new(TenantId::new(id), Load::new(0.3).unwrap())).unwrap();
        }
        journaled.remove(TenantId::new(3)).unwrap();
        serde_json::to_string(&cubefit_core::PlacementDump::from_placement(journaled.placement()))
            .unwrap()
    }

    #[test]
    fn recovers_a_crashed_journal_and_writes_an_auditable_dump() {
        let dir = journal_dir("crashed");
        let live = crashed_run(&dir);
        let out_path = format!("{dir}/recovered.json");
        let args =
            ParsedArgs::parse(["recover", dir.as_str(), "--audit", "--out", &out_path]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("UNCLEAN"), "{out}");
        assert!(out.contains("audit: oracle agrees"), "{out}");
        assert_eq!(std::fs::read_to_string(&out_path).unwrap(), live, "dump is bit-identical");
        // The recovered dump passes a full `cubefit check --audit`.
        let check = super::super::check::run(
            &ParsedArgs::parse(["check", out_path.as_str(), "--audit"]).unwrap(),
        )
        .unwrap();
        assert!(check.contains("oracle agrees"), "{check}");
    }

    #[test]
    fn corrupt_frames_are_reported_with_the_byte_offset() {
        let dir = journal_dir("corrupt");
        crashed_run(&dir);
        let wal = std::path::Path::new(&dir).join("wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&wal, bytes).unwrap();
        let err = run(&ParsedArgs::parse(["recover", dir.as_str()]).unwrap()).unwrap_err();
        assert!(err.contains("corrupt journal frame at byte"), "{err}");
    }

    #[test]
    fn missing_journal_and_missing_positional_are_errors() {
        let err =
            run(&ParsedArgs::parse(["recover", "/nonexistent-journal"]).unwrap()).unwrap_err();
        assert!(err.contains("recovering /nonexistent-journal"), "{err}");
        let err = run(&ParsedArgs::parse(["recover"]).unwrap()).unwrap_err();
        assert!(err.contains("usage"), "{err}");
    }
}
