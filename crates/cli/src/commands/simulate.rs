//! `cubefit simulate` — run the cluster DES over a placement + trace.

use crate::args::ParsedArgs;
use cubefit_cluster::{sim::assignments_from_placement, ClusterSim, QueryMix, SimConfig};
use cubefit_core::validity::{self, FailoverSemantics};
use cubefit_core::{PlacementDump, TenantId};
use cubefit_workload::{trace, LoadModel};
use std::collections::HashMap;

/// Flags accepted by `simulate`.
pub const FLAGS: &[&str] =
    &["trace", "failures", "warmup", "measure", "seed", "sla", "metrics-out", "trace-out"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "simulate PLACEMENT.json --trace TRACE [--failures F] [--warmup S] \
                         [--measure S] [--seed S] [--sla SECONDS] \
                         [--metrics-out METRICS.json] [--trace-out EVENTS.jsonl]";

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, unreadable inputs, or inconsistent
/// placement/trace pairs.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let placement_path = args.positional.first().ok_or_else(|| format!("usage: {USAGE}"))?;
    let trace_path = args.required("trace").map_err(|e| e.to_string())?;
    let failures: usize =
        args.get_or("failures", 1usize, "an integer").map_err(|e| e.to_string())?;
    let warmup: f64 = args.get_or("warmup", 5.0f64, "seconds").map_err(|e| e.to_string())?;
    let measure: f64 = args.get_or("measure", 30.0f64, "seconds").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    let sla: f64 = args.get_or("sla", 5.0f64, "seconds").map_err(|e| e.to_string())?;

    let json = std::fs::read_to_string(placement_path)
        .map_err(|e| format!("reading {placement_path}: {e}"))?;
    let dump: PlacementDump =
        serde_json::from_str(&json).map_err(|e| format!("parsing {placement_path}: {e}"))?;
    let placement = dump.to_placement().map_err(|e| format!("rebuilding placement: {e}"))?;

    let bytes = std::fs::read(trace_path).map_err(|e| format!("reading {trace_path}: {e}"))?;
    let sequence = trace::decode(&bytes[..]).map_err(|e| format!("decoding {trace_path}: {e}"))?;
    let clients: HashMap<TenantId, u32> =
        sequence.specs().iter().map(|s| (s.tenant.id(), s.clients)).collect();
    for (id, _, _) in placement.tenants() {
        if !clients.contains_key(&id) {
            return Err(format!("placement references {id} absent from the trace"));
        }
    }

    let failed = validity::worst_failure_set(&placement, failures, FailoverSemantics::EvenSplit);
    let impact = validity::simulate_failures(&placement, &failed, FailoverSemantics::EvenSplit);

    let model = LoadModel::tpch_xeon();
    let mix = QueryMix::tpch_like(&model, sla);
    let assignments = assignments_from_placement(&placement, &|id| clients[&id]);
    let mut sim = ClusterSim::new(
        placement.created_bins(),
        assignments,
        &mix,
        &model,
        SimConfig { warmup_seconds: warmup, measure_seconds: measure, seed },
    );
    sim.fail_servers(&failed.iter().map(|b| b.index()).collect::<Vec<_>>());
    let unavailable = sim.unavailable_clients();
    let report = sim.run();

    let mut extra = String::new();
    if let Some(path) = args.get("metrics-out") {
        // The DES has no recorder of its own; publish the latency
        // histograms as a metrics snapshot in the shared schema.
        let mut metrics = cubefit_telemetry::MetricsSnapshot::default();
        metrics.histograms.push(cubefit_telemetry::NamedHistogram {
            name: "query_latency_seconds".to_owned(),
            labels: vec![("scope".to_owned(), "cluster".to_owned())],
            histogram: report.overall.snapshot(),
        });
        for (server, latencies) in report.per_server.iter().enumerate() {
            if !latencies.is_empty() {
                metrics.histograms.push(cubefit_telemetry::NamedHistogram {
                    name: "query_latency_seconds".to_owned(),
                    labels: vec![("server".to_owned(), server.to_string())],
                    histogram: latencies.snapshot(),
                });
            }
        }
        crate::telemetry_out::write_metrics(path, &metrics)?;
        extra.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = args.get("trace-out") {
        use cubefit_telemetry::{JsonlSink, TraceEvent, TraceSink};
        let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        let sink = JsonlSink::new(std::io::BufWriter::new(file));
        for &bin in &failed {
            sink.record(&TraceEvent::BinClosed { bin: bin.index(), level: placement.level(bin) });
        }
        let check = validity::check(&placement);
        sink.record(&TraceEvent::RobustnessChecked {
            robust: check.is_robust(),
            worst_margin: check.worst_margin,
            violations: check.violations.len(),
        });
        sink.flush()?;
        extra.push_str(&format!("failure trace written to {path}\n"));
    }

    Ok(format!(
        "failed worst {failures}-set {:?} (model worst load {:.3})\n\
         worst-server p99 {:.2} s, cluster p99 {:.2} s, mean {:.2} s over {} samples\n\
         SLA {} s: {}; {} clients unavailable\n",
        failed.iter().map(|b| b.index()).collect::<Vec<_>>(),
        impact.max_load(),
        report.worst_server_p99(),
        report.p99(),
        report.mean(),
        report.overall.len(),
        sla,
        if impact.max_load() > 1.0 + cubefit_core::EPSILON {
            "guarantee VIOLATED"
        } else {
            "guarantee holds"
        },
        unavailable,
    ) + &extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{generate, place};

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn simulates_a_generated_placement() {
        let trace = tmp("sim.cft");
        let placement = tmp("sim.json");
        generate::run(
            &ParsedArgs::parse(["generate", "--out", &trace, "--tenants", "30", "--seed", "4"])
                .unwrap(),
        )
        .unwrap();
        place::run(&ParsedArgs::parse(["place", "--trace", &trace, "--out", &placement]).unwrap())
            .unwrap();
        let args = ParsedArgs::parse([
            "simulate",
            placement.as_str(),
            "--trace",
            &trace,
            "--failures",
            "1",
            "--warmup",
            "1",
            "--measure",
            "5",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("worst-server p99"));
        assert!(out.contains("guarantee holds"));
    }

    #[test]
    fn writes_latency_metrics_and_failure_trace() {
        use cubefit_telemetry::{MetricsSnapshot, TraceEvent};

        let trace = tmp("sim-metrics.cft");
        let placement = tmp("sim-metrics.json");
        let metrics_path = tmp("sim-metrics-out.json");
        let events_path = tmp("sim-events.jsonl");
        generate::run(
            &ParsedArgs::parse(["generate", "--out", &trace, "--tenants", "25", "--seed", "9"])
                .unwrap(),
        )
        .unwrap();
        place::run(&ParsedArgs::parse(["place", "--trace", &trace, "--out", &placement]).unwrap())
            .unwrap();
        let args = ParsedArgs::parse([
            "simulate",
            placement.as_str(),
            "--trace",
            &trace,
            "--warmup",
            "1",
            "--measure",
            "4",
            "--metrics-out",
            &metrics_path,
            "--trace-out",
            &events_path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("metrics written"));

        let metrics: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let cluster = metrics
            .histograms
            .iter()
            .find(|h| h.labels.iter().any(|(k, v)| k == "scope" && v == "cluster"))
            .expect("cluster-wide latency histogram");
        assert!(cluster.histogram.count > 0);
        // Per-server sample counts sum to the cluster-wide count.
        let per_server: u64 = metrics
            .histograms
            .iter()
            .filter(|h| h.labels.iter().any(|(k, _)| k == "server"))
            .map(|h| h.histogram.count)
            .sum();
        assert_eq!(per_server, cluster.histogram.count);

        let events: Vec<TraceEvent> = std::fs::read_to_string(&events_path)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect();
        // One failed server by default, then the robustness verdict.
        assert!(matches!(events[0], TraceEvent::BinClosed { .. }));
        assert!(matches!(events.last(), Some(TraceEvent::RobustnessChecked { robust: true, .. })));
    }

    #[test]
    fn detects_trace_mismatch() {
        let trace_a = tmp("sim-a.cft");
        let trace_b = tmp("sim-b.cft");
        let placement = tmp("sim-a.json");
        generate::run(
            &ParsedArgs::parse(["generate", "--out", &trace_a, "--tenants", "10"]).unwrap(),
        )
        .unwrap();
        // Different tenant count → ids missing from the second trace.
        generate::run(
            &ParsedArgs::parse(["generate", "--out", &trace_b, "--tenants", "3"]).unwrap(),
        )
        .unwrap();
        place::run(
            &ParsedArgs::parse(["place", "--trace", &trace_a, "--out", &placement]).unwrap(),
        )
        .unwrap();
        let args =
            ParsedArgs::parse(["simulate", placement.as_str(), "--trace", &trace_b]).unwrap();
        assert!(run(&args).unwrap_err().contains("absent from the trace"));
    }
}
