//! `cubefit rent` — server-renting economics comparison.
//!
//! Runs one seeded churn scenario three times under identical op
//! sequences — no defrag, bin-minimizing defrag, and cost-aware defrag
//! ([`cubefit_defrag::DefragObjective::Cost`]) — with the lease ledger
//! accruing rent throughout, and reports what each policy actually
//! spent: rent, defrag streaming, recovery streaming, and the renting
//! competitive ratio against the clairvoyant lower bound
//! ([`cubefit_analysis::renting_ratio`]).

use crate::args::ParsedArgs;
use crate::commands::churn::{budget_from, rent_from};
use crate::spec_parse;
use cubefit_defrag::DefragObjective;
use cubefit_economics::{CostReport, RentConfig};
use cubefit_sim::churn::{run_churn, ChurnConfig};

/// Flags accepted by `rent`.
pub const FLAGS: &[&str] = &[
    "algorithm",
    "gamma",
    "distribution",
    "ops",
    "seed",
    "departures",
    "failures",
    "defrag-every",
    "defrag-moves",
    "defrag-load",
    "rent",
    "block-ms",
    "hourly-usd",
    "ms-per-op",
    "horizon-ms",
    "audit",
    "out",
];

/// Usage line shown in `--help`.
pub const USAGE: &str = "rent [--algorithm cubefit] [--gamma G] [--distribution uniform:1-15] \
                         [--ops N] [--seed S] [--departures PCT] [--failures PCT] \
                         [--defrag-every N] [--defrag-moves M] [--defrag-load L] \
                         [--block-ms MS] [--hourly-usd USD] [--ms-per-op MS] [--horizon-ms MS] \
                         [--audit] [--out REPORT.json]";

/// One policy's outcome in the comparison document.
fn policy_value(label: &str, cost: &CostReport, servers_closed: usize) -> serde_json::Value {
    let ratio = cubefit_analysis::renting_ratio(cost);
    serde_json::json!({
        "policy": label,
        "cost": cost,
        "servers_closed_by_defrag": servers_closed,
        "competitive_ratio": ratio.map(|r| r.ratio),
        "clairvoyant_lower_bound_usd": ratio.map(|r| r.clairvoyant_usd),
    })
}

/// Runs the command, returning the JSON comparison document (or a
/// summary when `--out` redirects it to a file).
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let algorithm = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;
    let distribution =
        spec_parse::parse_distribution(args.get("distribution").unwrap_or("uniform:1-15"))?;
    let ops: usize = args.get_or("ops", 400usize, "an integer").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 17u64, "an integer").map_err(|e| e.to_string())?;
    // Departure-heavy defaults: renting economics only bite once churn
    // has stranded under-filled (but still paid-for) servers.
    let departure_percent: u32 =
        args.get_or("departures", 40u32, "a percentage").map_err(|e| e.to_string())?;
    let failure_percent: u32 =
        args.get_or("failures", 0u32, "a percentage").map_err(|e| e.to_string())?;
    if departure_percent + failure_percent > 100 {
        return Err(format!(
            "--departures {departure_percent} plus --failures {failure_percent} exceeds 100%"
        ));
    }
    let defrag_every: usize =
        args.get_or("defrag-every", 50usize, "an integer").map_err(|e| e.to_string())?;
    if defrag_every == 0 {
        return Err(
            "--defrag-every must be positive (the comparison needs defrag epochs)".to_owned()
        );
    }
    // The rent ledger is the whole point here: default it on.
    let rent = rent_from(args)?.unwrap_or_else(|| RentConfig::c4_4xlarge(3_600_000));

    let base = ChurnConfig {
        algorithm,
        distribution,
        ops,
        seed,
        departure_percent,
        failure_percent,
        max_failures: 1,
        audit: args.has("audit"),
        defrag_every,
        defrag_budget: budget_from(args)?,
        defrag_objective: DefragObjective::Bins,
        drift: None,
        rent: Some(rent),
    };
    let policies = [
        ("none", ChurnConfig { defrag_every: 0, ..base.clone() }),
        ("bins", base.clone()),
        (
            "cost",
            ChurnConfig {
                defrag_objective: DefragObjective::Cost { horizon_ms: rent.horizon_ms },
                ..base
            },
        ),
    ];

    let audited = policies[0].1.audit;
    let mut rows = Vec::new();
    let mut cheapest: Option<(&str, f64)> = None;
    for (label, config) in &policies {
        let report = run_churn(config).map_err(|e| e.to_string())?;
        let cost = report.cost.expect("rent is always configured here");
        if cheapest.is_none_or(|(_, best)| cost.total_usd < best) {
            cheapest = Some((label, cost.total_usd));
        }
        rows.push((label, cost, report.servers_closed_by_defrag));
    }

    let document = serde_json::json!({
        "algorithm": base_label(&policies),
        "seed": seed,
        "ops": ops,
        "block_ms": rent.terms.block_ms(),
        "hourly_usd": rent.terms.cost().hourly_usd(),
        "ms_per_op": rent.ms_per_op,
        "horizon_ms": rent.horizon_ms,
        // The audited consolidator panics on the first oracle
        // divergence, so audited runs that complete have exactly zero.
        "audit_divergences": if audited { Some(0) } else { None::<usize> },
        "policies": rows
            .iter()
            .map(|(label, cost, closed)| policy_value(label, cost, *closed))
            .collect::<Vec<_>>(),
        "cheapest_policy": cheapest.map(|(label, _)| label),
    });
    let json =
        serde_json::to_string_pretty(&document).map_err(|e| format!("encoding report: {e}"))?;

    let mut output = String::new();
    if let Some(path) = args.get("out") {
        crate::output::write_report(path, &json)?;
        output.push_str(&summary(&rows, cheapest));
        output.push_str(&format!("rent report written to {path}\n"));
    } else {
        output.push_str(&json);
        output.push('\n');
    }
    Ok(output)
}

/// Algorithm label shared by every policy run.
fn base_label(policies: &[(&str, ChurnConfig); 3]) -> String {
    policies[0].1.algorithm.label()
}

/// Human summary: one line per policy plus the verdict.
fn summary(rows: &[(&&str, CostReport, usize)], cheapest: Option<(&str, f64)>) -> String {
    let mut text = String::new();
    for (label, cost, closed) in rows {
        let ratio = cubefit_analysis::renting_ratio(cost)
            .map_or("n/a".to_owned(), |r| format!("{:.3}", r.ratio));
        text.push_str(&format!(
            "{label:>5}: total ${:.4} (rent ${:.4}, defrag ${:.4}, recovery ${:.4}), \
             {closed} closed by defrag, competitive ratio {ratio}\n",
            cost.total_usd, cost.rent_usd, cost.defrag_migration_usd, cost.recovery_migration_usd,
        ));
    }
    if let Some((label, total)) = cheapest {
        text.push_str(&format!("cheapest policy: {label} at ${total:.4}\n"));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn field<'a>(doc: &'a Value, key: &str) -> &'a Value {
        let Value::Object(map) = doc else { panic!("expected object") };
        map.get(key).unwrap_or_else(|| panic!("missing field {key}"))
    }

    fn number(value: &Value) -> f64 {
        let Value::Number(n) = value else { panic!("expected number, got {value:?}") };
        n.as_f64()
    }

    #[test]
    fn compares_three_policies_and_names_the_cheapest() {
        let args =
            ParsedArgs::parse(["rent", "--ops", "300", "--seed", "17", "--defrag-moves", "64"])
                .unwrap();
        let out = run(&args).unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        let Value::Array(policies) = field(&doc, "policies") else { panic!("expected array") };
        assert_eq!(policies.len(), 3);
        for policy in policies {
            let ratio = field(policy, "competitive_ratio");
            assert!(
                matches!(ratio, Value::Number(_)),
                "every policy must have a finite ratio: {policy:?}"
            );
            let cost = field(policy, "cost");
            assert!(number(field(cost, "total_usd")) > 0.0);
        }
        assert!(matches!(field(&doc, "cheapest_policy"), Value::String(_)));
    }

    /// Day-long blocks inside a two-hour horizon: bins-defrag pays
    /// migration for rent it can never save, so the cost-aware policy
    /// must come out strictly cheaper (the BENCH_rent acceptance shape,
    /// in miniature).
    #[test]
    fn cost_policy_beats_bins_on_long_blocks() {
        let args = ParsedArgs::parse([
            "rent",
            "--ops",
            "300",
            "--seed",
            "17",
            "--defrag-moves",
            "64",
            "--block-ms",
            "86400000",
            "--audit",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        assert_eq!(number(field(&doc, "audit_divergences")), 0.0);
        let Value::Array(policies) = field(&doc, "policies") else { panic!("expected array") };
        let total = |label: &str| -> f64 {
            policies
                .iter()
                .find(|p| field(p, "policy") == &Value::String(label.to_owned()))
                .map(|p| number(field(field(p, "cost"), "total_usd")))
                .unwrap()
        };
        assert!(
            total("cost") < total("bins"),
            "cost-aware defrag must undercut bins-defrag on paid-up day blocks: {} vs {}",
            total("cost"),
            total("bins")
        );
        assert_eq!(field(&doc, "cheapest_policy"), &Value::String("cost".to_owned()));
    }

    #[test]
    fn rejects_bad_flags() {
        let args = ParsedArgs::parse(["rent", "--frobnicate", "1"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["rent", "--defrag-every", "0"]).unwrap();
        assert!(run(&args).unwrap_err().contains("defrag-every"));
        let args = ParsedArgs::parse(["rent", "--block-ms", "0"]).unwrap();
        assert!(run(&args).unwrap_err().contains("block-ms"));
    }
}
