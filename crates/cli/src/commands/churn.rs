//! `cubefit churn` — seeded churn-and-recovery chaos runs.

use crate::args::ParsedArgs;
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_core::monitor::DEFAULT_AT_RISK_SLACK;
use cubefit_defrag::{DefragObjective, MigrationBudget};
use cubefit_economics::{CostModel, LeaseTerms, MigrationPricing, RentConfig};
use cubefit_service::ShutdownFlag;
use cubefit_sim::churn::{run_churn_cancellable, run_churn_journaled, ChurnConfig, DriftConfig};

/// Flags accepted by `churn`.
pub const FLAGS: &[&str] = &[
    "algorithm",
    "gamma",
    "distribution",
    "ops",
    "seed",
    "departures",
    "failures",
    "max-failures",
    "defrag-every",
    "defrag-moves",
    "defrag-load",
    "drift",
    "profile",
    "mitigate-every",
    "mitigate-moves",
    "mitigate-load",
    "slack",
    "audit",
    "rent",
    "block-ms",
    "hourly-usd",
    "ms-per-op",
    "horizon-ms",
    "objective",
    "out",
    "metrics-out",
    "trace-out",
    "journal",
    "fsync",
];

/// Usage line shown in `--help`.
pub const USAGE: &str = "churn [--algorithm cubefit] [--gamma G] [--distribution uniform:1-15] \
                         [--ops N] [--seed S] [--departures PCT] [--failures PCT] \
                         [--max-failures F] [--defrag-every N] [--defrag-moves M] \
                         [--defrag-load L] [--drift] [--profile burst:m=20,p=0.01] \
                         [--mitigate-every N] [--mitigate-moves M] [--mitigate-load L] \
                         [--slack S] [--audit] [--rent] [--block-ms MS] [--hourly-usd USD] \
                         [--ms-per-op MS] [--horizon-ms MS] [--objective bins|cost] \
                         [--out REPORT.json] [--metrics-out METRICS.json] \
                         [--trace-out EVENTS.jsonl] [--journal DIR] \
                         [--fsync always|interval:N|never]";

/// Parses the shared `--defrag-moves` / `--defrag-load` budget flags.
pub(crate) fn budget_from(args: &ParsedArgs) -> Result<MigrationBudget, String> {
    let max_moves = match args.get("defrag-moves") {
        None => None,
        Some(_) => {
            Some(args.get_or("defrag-moves", 0usize, "an integer").map_err(|e| e.to_string())?)
        }
    };
    let max_load = match args.get("defrag-load") {
        None => None,
        Some(_) => {
            let load: f64 =
                args.get_or("defrag-load", 0.0f64, "a number").map_err(|e| e.to_string())?;
            if load < 0.0 {
                return Err(format!("--defrag-load {load} must be non-negative"));
            }
            Some(load)
        }
    };
    Ok(MigrationBudget { max_moves, max_load })
}

/// Parses the shared drift flags (`--profile`, `--mitigate-every`,
/// `--mitigate-moves`, `--mitigate-load`, `--slack`) into a [`DriftConfig`].
/// The mitigation budget defaults to unlimited: `--mitigate-every` without
/// a cap means "repair everything at the stride".
pub(crate) fn drift_from(args: &ParsedArgs) -> Result<DriftConfig, String> {
    let profile = spec_parse::parse_drift_profile(args.get("profile").unwrap_or("burst"))?;
    let mitigate_every: usize =
        args.get_or("mitigate-every", 0usize, "an integer").map_err(|e| e.to_string())?;
    let at_risk_slack: f64 =
        args.get_or("slack", DEFAULT_AT_RISK_SLACK, "a number").map_err(|e| e.to_string())?;
    if !(0.0..1.0).contains(&at_risk_slack) {
        return Err(format!("--slack {at_risk_slack} must lie in [0, 1)"));
    }
    let max_moves = match args.get("mitigate-moves") {
        None => None,
        Some(_) => {
            Some(args.get_or("mitigate-moves", 0usize, "an integer").map_err(|e| e.to_string())?)
        }
    };
    let max_load = match args.get("mitigate-load") {
        None => None,
        Some(_) => {
            let load: f64 =
                args.get_or("mitigate-load", 0.0f64, "a number").map_err(|e| e.to_string())?;
            if load < 0.0 {
                return Err(format!("--mitigate-load {load} must be non-negative"));
            }
            Some(load)
        }
    };
    Ok(DriftConfig {
        profile,
        mitigate_every,
        budget: MigrationBudget { max_moves, max_load },
        at_risk_slack,
    })
}

/// Parses the shared renting flags into a [`RentConfig`]. `--rent`
/// enables the ledger at c4.4xlarge defaults; `--block-ms`,
/// `--hourly-usd`, `--ms-per-op` and `--horizon-ms` each refine it (and
/// each implies `--rent` on its own).
pub(crate) fn rent_from(args: &ParsedArgs) -> Result<Option<RentConfig>, String> {
    let enabled = args.has("rent")
        || ["block-ms", "hourly-usd", "ms-per-op", "horizon-ms"]
            .iter()
            .any(|flag| args.get(flag).is_some());
    if !enabled {
        return Ok(None);
    }
    let block_ms: u64 =
        args.get_or("block-ms", 3_600_000u64, "an integer").map_err(|e| e.to_string())?;
    if block_ms == 0 {
        return Err("--block-ms must be positive".to_owned());
    }
    let mut rent = RentConfig::c4_4xlarge(block_ms);
    if args.get("hourly-usd").is_some() {
        let hourly: f64 =
            args.get_or("hourly-usd", 0.0f64, "a number").map_err(|e| e.to_string())?;
        if hourly <= 0.0 || !hourly.is_finite() {
            return Err(format!("--hourly-usd {hourly} must be positive and finite"));
        }
        rent.terms = LeaseTerms::new(block_ms, CostModel::with_hourly_usd(hourly));
        rent.pricing = MigrationPricing::at_hourly_rate(hourly);
    }
    rent.ms_per_op =
        args.get_or("ms-per-op", rent.ms_per_op, "an integer").map_err(|e| e.to_string())?;
    if rent.ms_per_op == 0 {
        return Err("--ms-per-op must be positive".to_owned());
    }
    rent.horizon_ms =
        args.get_or("horizon-ms", rent.horizon_ms, "an integer").map_err(|e| e.to_string())?;
    if rent.horizon_ms == 0 {
        return Err("--horizon-ms must be positive".to_owned());
    }
    Ok(Some(rent))
}

/// Parses `--objective bins|cost`. The cost objective needs a ledger to
/// consult, so it requires the renting flags.
pub(crate) fn objective_from(
    args: &ParsedArgs,
    rent: Option<&RentConfig>,
) -> Result<DefragObjective, String> {
    match args.get("objective").unwrap_or("bins") {
        "bins" => Ok(DefragObjective::Bins),
        "cost" => match rent {
            Some(config) => Ok(DefragObjective::Cost { horizon_ms: config.horizon_ms }),
            None => Err("--objective cost requires --rent (there is no ledger to consult \
                         without a renting model)"
                .to_owned()),
        },
        other => Err(format!("unknown objective '{other}' (expected bins or cost)")),
    }
}

/// Runs the command, returning the JSON churn report (or a summary when
/// `--out` redirects the report to a file).
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let algorithm = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;
    let distribution =
        spec_parse::parse_distribution(args.get("distribution").unwrap_or("uniform:1-15"))?;
    let ops: usize = args.get_or("ops", 500usize, "an integer").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    let departure_percent: u32 =
        args.get_or("departures", 25u32, "a percentage").map_err(|e| e.to_string())?;
    let failure_percent: u32 =
        args.get_or("failures", 10u32, "a percentage").map_err(|e| e.to_string())?;
    if departure_percent + failure_percent > 100 {
        return Err(format!(
            "--departures {departure_percent} plus --failures {failure_percent} exceeds 100%"
        ));
    }
    let max_failures: usize = args
        .get_or("max-failures", algorithm.gamma().saturating_sub(1).max(1), "an integer")
        .map_err(|e| e.to_string())?;
    if max_failures >= algorithm.gamma() {
        return Err(format!(
            "--max-failures {max_failures} would breach availability: at most γ−1 = {} servers \
             may fail per event",
            algorithm.gamma() - 1
        ));
    }

    let rent = rent_from(args)?;
    let config = ChurnConfig {
        algorithm,
        distribution,
        ops,
        seed,
        departure_percent,
        failure_percent,
        max_failures,
        audit: args.has("audit"),
        defrag_every: args
            .get_or("defrag-every", 0usize, "an integer")
            .map_err(|e| e.to_string())?,
        defrag_budget: budget_from(args)?,
        defrag_objective: objective_from(args, rent.as_ref())?,
        drift: if args.has("drift") { Some(drift_from(args)?) } else { None },
        rent,
    };
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    let journal = super::journal_from(args, config.algorithm.gamma())?;
    let report = match &journal {
        Some(journal) => {
            run_churn_journaled(&config, recorder.clone(), journal, Some(&ShutdownFlag::install()))
                .map_err(|e| e.to_string())?
        }
        None => run_churn_cancellable(&config, recorder.clone(), &ShutdownFlag::install())
            .map_err(|e| e.to_string())?,
    };
    recorder.flush()?;

    let json = report.to_json();
    let mut output = String::new();
    if let Some(path) = args.get("out") {
        crate::output::write_report(path, &json)?;
        output.push_str(&format!(
            "{} (seed {}): {} arrivals, {} departures, {} failure events; \
             recovery moved {} replicas ({:.3} load, {} bins opened); \
             degraded {:.0}s total (max {:.0}s); \
             final: {} tenants on {} bins, utilization {:.3}, \
             fragmentation ratio {:.2}; robust: {}\n",
            report.algorithm,
            report.seed,
            report.arrivals,
            report.departures,
            report.failure_events.len(),
            report.recovery.replicas_migrated,
            report.recovery.moved_load,
            report.recovery.bins_opened,
            report.degraded_seconds_total,
            report.degraded_seconds_max,
            report.final_tenants,
            report.final_open_bins,
            report.fragmentation.mean_fill,
            report.fragmentation.fragmentation_ratio,
            report.robust,
        ));
        if !report.defrag_epochs.is_empty() {
            output.push_str(&format!(
                "defrag: {} epochs closed {} servers\n",
                report.defrag_epochs.len(),
                report.servers_closed_by_defrag,
            ));
        }
        if report.drift_updates > 0 {
            output.push_str(&format!(
                "drift: {} load updates, {} invariant violations detected; \
                 mitigation: {} epochs cured {} servers, final: {} violated / {} at risk\n",
                report.drift_updates,
                report.drift_violations,
                report.mitigation_epochs.len(),
                report.servers_cured_by_mitigation,
                report.final_violated,
                report.final_at_risk,
            ));
        }
        output.push_str(&format!("churn report written to {path}\n"));
    } else {
        output.push_str(&json);
        output.push('\n');
    }
    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &recorder.snapshot())?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("decision trace written to {path}\n"));
    }
    if let Some(journal) = &journal {
        output.push_str(&format!(
            "journal sealed at seq {} in {}\n",
            journal.last_seq(),
            args.get("journal").unwrap_or_default()
        ));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_sim::churn::ChurnReport;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn emits_json_with_recovery_cost_and_degraded_window() {
        let args = ParsedArgs::parse([
            "churn",
            "--algorithm",
            "cubefit:k=5",
            "--gamma",
            "3",
            "--ops",
            "150",
            "--seed",
            "7",
            "--audit",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let report: ChurnReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.gamma, 3);
        assert_eq!(report.arrivals + report.departures + report.failure_events.len(), 150);
        assert!(report.robust);
        assert!(out.contains("degraded_seconds_total"));
        assert!(out.contains("replicas_migrated"));
    }

    #[test]
    fn out_flag_writes_report_and_prints_summary() {
        let path = tmp("churn-report.json");
        let args =
            ParsedArgs::parse(["churn", "--ops", "120", "--seed", "3", "--out", &path]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("churn report written to"));
        assert!(out.contains("degraded"));
        // The stdout summary surfaces seed, final bin count and
        // utilization, not just event counts.
        assert!(out.contains("(seed 3)"), "{out}");
        assert!(out.contains("bins, utilization"), "{out}");
        let report: ChurnReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.seed, 3);
        assert_eq!(report.fragmentation.open_bins, report.final_open_bins);
    }

    #[test]
    fn defrag_every_runs_epochs_under_a_budget() {
        let path = tmp("churn-defrag-report.json");
        let args = ParsedArgs::parse([
            "churn",
            "--ops",
            "200",
            "--seed",
            "17",
            "--departures",
            "40",
            "--failures",
            "0",
            "--defrag-every",
            "50",
            "--defrag-moves",
            "64",
            "--audit",
            "--out",
            &path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("defrag:"), "{out}");
        let report: ChurnReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.defrag_epochs.len(), 4);
        for epoch in &report.defrag_epochs {
            assert!(epoch.outcome.applied_steps <= 64);
        }
        assert!(report.robust);
    }

    #[test]
    fn rejects_negative_defrag_load() {
        let args = ParsedArgs::parse(["churn", "--defrag-load", "-1"]);
        // "--defrag-load -1" parses ("-1" is the value, not a flag), so the
        // rejection comes from the range check.
        let err = run(&args.unwrap()).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
    }

    #[test]
    fn rejects_availability_breaching_failure_count() {
        let args = ParsedArgs::parse(["churn", "--gamma", "2", "--max-failures", "2"]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("γ−1"), "{err}");
    }

    #[test]
    fn rejects_overweight_op_mix() {
        let args = ParsedArgs::parse(["churn", "--departures", "70", "--failures", "40"]).unwrap();
        assert!(run(&args).unwrap_err().contains("exceeds 100%"));
    }

    #[test]
    fn trace_out_captures_failure_events() {
        let trace_path = tmp("churn-events.jsonl");
        let args = ParsedArgs::parse([
            "churn",
            "--ops",
            "150",
            "--seed",
            "21",
            "--failures",
            "20",
            "--trace-out",
            &trace_path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("decision trace written to"));
        let events = std::fs::read_to_string(&trace_path).unwrap();
        assert!(events.contains("servers_failed") || events.contains("ServersFailed"));
        assert!(events.contains("recovery_completed") || events.contains("RecoveryCompleted"));
    }
}
