//! `cubefit churn` — seeded churn-and-recovery chaos runs.

use crate::args::ParsedArgs;
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_sim::churn::{run_churn_with, ChurnConfig};

/// Flags accepted by `churn`.
pub const FLAGS: &[&str] = &[
    "algorithm",
    "gamma",
    "distribution",
    "ops",
    "seed",
    "departures",
    "failures",
    "max-failures",
    "audit",
    "out",
    "metrics-out",
    "trace-out",
];

/// Usage line shown in `--help`.
pub const USAGE: &str = "churn [--algorithm cubefit] [--gamma G] [--distribution uniform:1-15] \
                         [--ops N] [--seed S] [--departures PCT] [--failures PCT] \
                         [--max-failures F] [--audit] [--out REPORT.json] \
                         [--metrics-out METRICS.json] [--trace-out EVENTS.jsonl]";

/// Runs the command, returning the JSON churn report (or a summary when
/// `--out` redirects the report to a file).
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let algorithm = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;
    let distribution =
        spec_parse::parse_distribution(args.get("distribution").unwrap_or("uniform:1-15"))?;
    let ops: usize = args.get_or("ops", 500usize, "an integer").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    let departure_percent: u32 =
        args.get_or("departures", 25u32, "a percentage").map_err(|e| e.to_string())?;
    let failure_percent: u32 =
        args.get_or("failures", 10u32, "a percentage").map_err(|e| e.to_string())?;
    if departure_percent + failure_percent > 100 {
        return Err(format!(
            "--departures {departure_percent} plus --failures {failure_percent} exceeds 100%"
        ));
    }
    let max_failures: usize = args
        .get_or("max-failures", algorithm.gamma().saturating_sub(1).max(1), "an integer")
        .map_err(|e| e.to_string())?;
    if max_failures >= algorithm.gamma() {
        return Err(format!(
            "--max-failures {max_failures} would breach availability: at most γ−1 = {} servers \
             may fail per event",
            algorithm.gamma() - 1
        ));
    }

    let config = ChurnConfig {
        algorithm,
        distribution,
        ops,
        seed,
        departure_percent,
        failure_percent,
        max_failures,
        audit: args.has("audit"),
    };
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    let report = run_churn_with(&config, recorder.clone()).map_err(|e| e.to_string())?;
    recorder.flush();

    let json = report.to_json();
    let mut output = String::new();
    if let Some(path) = args.get("out") {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        output.push_str(&format!(
            "{}: {} arrivals, {} departures, {} failure events; \
             recovery moved {} replicas ({:.3} load, {} bins opened); \
             degraded {:.0}s total (max {:.0}s); robust: {}\n",
            report.algorithm,
            report.arrivals,
            report.departures,
            report.failure_events.len(),
            report.recovery.replicas_migrated,
            report.recovery.moved_load,
            report.recovery.bins_opened,
            report.degraded_seconds_total,
            report.degraded_seconds_max,
            report.robust,
        ));
        output.push_str(&format!("churn report written to {path}\n"));
    } else {
        output.push_str(&json);
        output.push('\n');
    }
    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &recorder.snapshot())?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("decision trace written to {path}\n"));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_sim::churn::ChurnReport;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn emits_json_with_recovery_cost_and_degraded_window() {
        let args = ParsedArgs::parse([
            "churn",
            "--algorithm",
            "cubefit:k=5",
            "--gamma",
            "3",
            "--ops",
            "150",
            "--seed",
            "7",
            "--audit",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        let report: ChurnReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.gamma, 3);
        assert_eq!(report.arrivals + report.departures + report.failure_events.len(), 150);
        assert!(report.robust);
        assert!(out.contains("degraded_seconds_total"));
        assert!(out.contains("replicas_migrated"));
    }

    #[test]
    fn out_flag_writes_report_and_prints_summary() {
        let path = tmp("churn-report.json");
        let args =
            ParsedArgs::parse(["churn", "--ops", "120", "--seed", "3", "--out", &path]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("churn report written to"));
        assert!(out.contains("degraded"));
        let report: ChurnReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.seed, 3);
    }

    #[test]
    fn rejects_availability_breaching_failure_count() {
        let args = ParsedArgs::parse(["churn", "--gamma", "2", "--max-failures", "2"]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("γ−1"), "{err}");
    }

    #[test]
    fn rejects_overweight_op_mix() {
        let args = ParsedArgs::parse(["churn", "--departures", "70", "--failures", "40"]).unwrap();
        assert!(run(&args).unwrap_err().contains("exceeds 100%"));
    }

    #[test]
    fn trace_out_captures_failure_events() {
        let trace_path = tmp("churn-events.jsonl");
        let args = ParsedArgs::parse([
            "churn",
            "--ops",
            "150",
            "--seed",
            "21",
            "--failures",
            "20",
            "--trace-out",
            &trace_path,
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("decision trace written to"));
        let events = std::fs::read_to_string(&trace_path).unwrap();
        assert!(events.contains("servers_failed") || events.contains("ServersFailed"));
        assert!(events.contains("recovery_completed") || events.contains("RecoveryCompleted"));
    }
}
