//! `cubefit place` — place a trace with an algorithm and dump the result.

use crate::args::ParsedArgs;
use crate::spec_parse;
use cubefit_core::PlacementDump;
use cubefit_workload::trace;

/// Flags accepted by `place`.
pub const FLAGS: &[&str] = &["trace", "algorithm", "gamma", "out"];

/// Usage line shown in `--help`.
pub const USAGE: &str =
    "place --trace TRACE [--algorithm cubefit|cubefit:k=5|rfi|…] [--gamma G] [--out PLACEMENT.json]";

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let trace_path = args.required("trace").map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let spec = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;

    let bytes = std::fs::read(trace_path).map_err(|e| format!("reading {trace_path}: {e}"))?;
    let sequence = trace::decode(&bytes[..]).map_err(|e| format!("decoding {trace_path}: {e}"))?;

    let result = cubefit_sim::run_sequence(&spec, &sequence).map_err(|e| e.to_string())?;
    let mut output = format!(
        "{algo}: {tenants} tenants on {servers} servers \
         (utilization {util:.1}%, robust: {robust}, placed in {wall:.1?})\n",
        algo = result.algorithm,
        tenants = result.tenants,
        servers = result.servers,
        util = result.utilization * 100.0,
        robust = result.robust,
        wall = result.wall,
    );

    if let Some(out) = args.get("out") {
        // Re-run to obtain the placement itself (run_sequence reports
        // statistics only); placement is deterministic given the spec.
        let mut algorithm = spec.build().map_err(|e| e.to_string())?;
        for tenant in sequence.tenants() {
            algorithm.place(tenant).map_err(|e| e.to_string())?;
        }
        let dump = PlacementDump::from_placement(algorithm.placement());
        let json = serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        output.push_str(&format!("placement written to {out}\n"));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::generate;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn make_trace(name: &str) -> String {
        let path = tmp(name);
        let args = ParsedArgs::parse(["generate", "--out", &path, "--tenants", "40"]).unwrap();
        generate::run(&args).unwrap();
        path
    }

    #[test]
    fn places_and_dumps() {
        let trace = make_trace("place-in.cft");
        let out = tmp("place-out.json");
        let args = ParsedArgs::parse([
            "place", "--trace", &trace, "--algorithm", "cubefit:k=5", "--out", &out,
        ])
        .unwrap();
        let text = run(&args).unwrap();
        assert!(text.contains("40 tenants"));
        assert!(text.contains("robust: true"));
        let dump: PlacementDump =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(dump.tenants.len(), 40);
        assert!(dump.to_placement().unwrap().is_robust());
    }

    #[test]
    fn reports_without_out_flag() {
        let trace = make_trace("place-noout.cft");
        let args = ParsedArgs::parse(["place", "--trace", &trace, "--algorithm", "rfi"]).unwrap();
        assert!(run(&args).unwrap().contains("rfi"));
    }

    #[test]
    fn bad_algorithm_is_reported() {
        let trace = make_trace("place-bad.cft");
        let args =
            ParsedArgs::parse(["place", "--trace", &trace, "--algorithm", "magic"]).unwrap();
        assert!(run(&args).unwrap_err().contains("unknown algorithm"));
    }
}
