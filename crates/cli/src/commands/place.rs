//! `cubefit place` — place a trace with an algorithm and dump the result.

use crate::args::ParsedArgs;
use crate::spec_parse;
use crate::telemetry_out;
use cubefit_core::PlacementDump;
use cubefit_workload::trace;

/// Flags accepted by `place`.
pub const FLAGS: &[&str] =
    &["trace", "algorithm", "gamma", "out", "metrics-out", "trace-out", "shards", "batch"];

/// Usage line shown in `--help`.
pub const USAGE: &str =
    "place --trace TRACE [--algorithm cubefit|cubefit:k=5|rfi|…] [--gamma G] [--out PLACEMENT.json] \
     [--metrics-out METRICS.json] [--trace-out EVENTS.jsonl] [--shards N] [--batch B]";

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, bad specs, or I/O failures.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let trace_path = args.required("trace").map_err(|e| e.to_string())?;
    let gamma: usize = args.get_or("gamma", 2usize, "an integer").map_err(|e| e.to_string())?;
    let spec = spec_parse::parse_algorithm(args.get("algorithm").unwrap_or("cubefit"), gamma)?;

    let bytes = std::fs::read(trace_path).map_err(|e| format!("reading {trace_path}: {e}"))?;
    let sequence = trace::decode(&bytes[..]).map_err(|e| format!("decoding {trace_path}: {e}"))?;

    let shards: usize = args.get_or("shards", 0usize, "an integer").map_err(|e| e.to_string())?;
    let batch: usize = args.get_or("batch", 0usize, "an integer").map_err(|e| e.to_string())?;
    let batched = shards > 1 || batch > 0;

    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    if batched && (metrics_out.is_some() || trace_out.is_some()) {
        return Err(
            "--shards/--batch use the batch fast paths, which skip per-decision telemetry; \
             drop --metrics-out/--trace-out or run without sharding"
                .to_string(),
        );
    }
    let recorder = telemetry_out::recorder_for(metrics_out, trace_out)?;
    let result = if batched {
        cubefit_sim::run_sequence_batched(&spec, &sequence, shards, batch)
            .map_err(|e| e.to_string())?
    } else {
        cubefit_sim::run_sequence_with(&spec, &sequence, &recorder).map_err(|e| e.to_string())?
    };
    recorder.flush()?;
    let mut output = format!(
        "{algo}: {tenants} tenants on {servers} servers \
         (utilization {util:.1}%, robust: {robust}, placed in {wall:.1?})\n",
        algo = result.algorithm,
        tenants = result.tenants,
        servers = result.servers,
        util = result.utilization * 100.0,
        robust = result.robust,
        wall = result.wall,
    );
    if batched {
        output.push_str(&format!(
            "backend: {} shard(s), batch size {}\n",
            shards.max(1),
            if batch == 0 { result.tenants } else { batch },
        ));
    }

    if let Some(path) = metrics_out {
        telemetry_out::write_metrics(path, &result.metrics)?;
        output.push_str(&format!("metrics written to {path}\n"));
    }
    if let Some(path) = trace_out {
        output.push_str(&format!("decision trace written to {path}\n"));
    }
    if let Some(out) = args.get("out") {
        // Re-run to obtain the placement itself (run_sequence reports
        // statistics only); placement is deterministic given the spec,
        // and identical whether or not sharding/batching was used.
        let mut algorithm = spec.build().map_err(|e| e.to_string())?;
        if shards > 1 {
            algorithm.set_shards(shards);
        }
        let tenants: Vec<_> = sequence.tenants().collect();
        let chunk = if batch == 0 { tenants.len().max(1) } else { batch };
        for slice in tenants.chunks(chunk) {
            algorithm.place_batch(slice.to_vec()).map_err(|e| e.to_string())?;
        }
        let dump = PlacementDump::from_placement(algorithm.placement());
        let json = serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?;
        crate::output::write_report(out, json)?;
        output.push_str(&format!("placement written to {out}\n"));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::generate;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn make_trace(name: &str) -> String {
        let path = tmp(name);
        let args = ParsedArgs::parse(["generate", "--out", &path, "--tenants", "40"]).unwrap();
        generate::run(&args).unwrap();
        path
    }

    #[test]
    fn places_and_dumps() {
        let trace = make_trace("place-in.cft");
        let out = tmp("place-out.json");
        let args = ParsedArgs::parse([
            "place",
            "--trace",
            &trace,
            "--algorithm",
            "cubefit:k=5",
            "--out",
            &out,
        ])
        .unwrap();
        let text = run(&args).unwrap();
        assert!(text.contains("40 tenants"));
        assert!(text.contains("robust: true"));
        let dump: PlacementDump =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(dump.tenants.len(), 40);
        assert!(dump.to_placement().unwrap().is_robust());
    }

    #[test]
    fn trace_out_bin_opened_matches_reported_servers() {
        use cubefit_telemetry::{MetricsSnapshot, TraceEvent};

        let trace = make_trace("place-traceout.cft");
        let events_path = tmp("place-events.jsonl");
        let metrics_path = tmp("place-metrics.json");
        let args = ParsedArgs::parse([
            "place",
            "--trace",
            &trace,
            "--trace-out",
            &events_path,
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        let text = run(&args).unwrap();
        let servers: usize = text
            .split(" servers")
            .next()
            .and_then(|s| s.rsplit(' ').next())
            .unwrap()
            .parse()
            .unwrap();

        let body = std::fs::read_to_string(&events_path).unwrap();
        let events: Vec<TraceEvent> =
            body.lines().map(|line| serde_json::from_str(line).unwrap()).collect();
        let opened = events.iter().filter(|e| matches!(e, TraceEvent::BinOpened { .. })).count();
        assert_eq!(opened, servers, "one BinOpened per reported server");
        assert!(matches!(events.last(), Some(TraceEvent::RobustnessChecked { .. })));

        let metrics: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(metrics.counter("placements", &[]) as usize, 40);
    }

    /// `--shards`/`--batch` are throughput levers: the dumped placement
    /// must be byte-identical to the default single-backend run.
    #[test]
    fn sharded_batched_placement_matches_default() {
        let trace = make_trace("place-sharded.cft");
        let plain_out = tmp("place-plain.json");
        let sharded_out = tmp("place-sharded.json");
        let plain =
            run(&ParsedArgs::parse(["place", "--trace", &trace, "--out", &plain_out]).unwrap())
                .unwrap();
        let sharded = run(&ParsedArgs::parse([
            "place",
            "--trace",
            &trace,
            "--out",
            &sharded_out,
            "--shards",
            "4",
            "--batch",
            "16",
        ])
        .unwrap())
        .unwrap();
        assert!(sharded.contains("4 shard(s), batch size 16"));
        assert!(!plain.contains("shard(s)"));
        assert_eq!(
            std::fs::read_to_string(&plain_out).unwrap(),
            std::fs::read_to_string(&sharded_out).unwrap(),
            "sharding/batching must not change placement decisions"
        );
    }

    #[test]
    fn batched_mode_rejects_telemetry_flags() {
        let trace = make_trace("place-sharded-telemetry.cft");
        let args = ParsedArgs::parse([
            "place",
            "--trace",
            &trace,
            "--shards",
            "4",
            "--metrics-out",
            &tmp("m.json"),
        ])
        .unwrap();
        assert!(run(&args).unwrap_err().contains("telemetry"));
    }

    #[test]
    fn reports_without_out_flag() {
        let trace = make_trace("place-noout.cft");
        let args = ParsedArgs::parse(["place", "--trace", &trace, "--algorithm", "rfi"]).unwrap();
        assert!(run(&args).unwrap().contains("rfi"));
    }

    #[test]
    fn bad_algorithm_is_reported() {
        let trace = make_trace("place-bad.cft");
        let args = ParsedArgs::parse(["place", "--trace", &trace, "--algorithm", "magic"]).unwrap();
        assert!(run(&args).unwrap_err().contains("unknown algorithm"));
    }
}
