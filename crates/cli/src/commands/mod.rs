//! Subcommand implementations.
//!
//! Every command is a pure function from parsed arguments to its printed
//! output (errors as `String` messages), so the whole CLI surface is unit
//! tested without spawning processes.

pub mod analyze;
pub mod check;
pub mod churn;
pub mod compare;
pub mod defrag;
pub mod drift;
pub mod generate;
pub mod metrics;
pub mod place;
pub mod recover;
pub mod rent;
pub mod replay;
pub mod serve;
pub mod simulate;
pub mod soak;

use cubefit_workload::{LoadModel, SequenceBuilder, TenantSequence};

use crate::args::ParsedArgs;
use crate::spec_parse;

/// Builds the load model selected by `--model` (default `tpch`).
pub(crate) fn model_from(args: &ParsedArgs) -> Result<LoadModel, String> {
    let max_clients: u32 =
        args.get_or("max-clients", 52u32, "an integer").map_err(|e| e.to_string())?;
    match args.get("model").unwrap_or("tpch") {
        "tpch" => Ok(LoadModel::tpch_xeon()),
        "normalized" => Ok(LoadModel::normalized(max_clients)),
        other => Err(format!("unknown model '{other}' (expected tpch or normalized)")),
    }
}

/// Generates a sequence from `--distribution`, `--tenants`, `--seed`.
pub(crate) fn sequence_from(args: &ParsedArgs) -> Result<TenantSequence, String> {
    let distribution =
        spec_parse::parse_distribution(args.get("distribution").unwrap_or("uniform:1-15"))?;
    let tenants: usize =
        args.get_or("tenants", 1_000usize, "an integer").map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0u64, "an integer").map_err(|e| e.to_string())?;
    let model = model_from(args)?;
    let boxed = distribution.build(model.max_clients());
    Ok(SequenceBuilder::new(Boxed(boxed), model).count(tenants).seed(seed).build())
}

/// Opens the write-ahead journal selected by `--journal DIR` for a run
/// at replication `gamma`, honouring `--fsync always|interval:N|never`
/// (default `interval:1024` — bounded loss window without per-op fsync
/// cost). Returns `None` when the run is unjournaled.
pub(crate) fn journal_from(
    args: &ParsedArgs,
    gamma: usize,
) -> Result<Option<cubefit_durability::Journal>, String> {
    let Some(dir) = args.get("journal") else {
        if args.has("fsync") {
            return Err("--fsync only applies to journaled runs (add --journal DIR)".to_string());
        }
        return Ok(None);
    };
    let policy =
        cubefit_durability::FsyncPolicy::parse(args.get("fsync").unwrap_or("interval:1024"))
            .map_err(|e| e.to_string())?;
    cubefit_durability::Journal::create(dir, gamma, policy).map(Some).map_err(|e| e.to_string())
}

/// Adapter for boxed distributions.
#[derive(Debug)]
pub(crate) struct Boxed(pub Box<dyn cubefit_workload::ClientDistribution>);

impl cubefit_workload::ClientDistribution for Boxed {
    fn sample_clients(&self, rng: &mut dyn rand::RngCore) -> u32 {
        self.0.sample_clients(rng)
    }

    fn max_clients(&self) -> u32 {
        self.0.max_clients()
    }

    fn label(&self) -> String {
        self.0.label()
    }
}
