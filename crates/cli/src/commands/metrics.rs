//! `cubefit metrics` — offline rollup/diff views over metrics snapshots
//! written by `--metrics-out`.

use crate::args::ParsedArgs;
use cubefit_telemetry::MetricsSnapshot;

/// Flags accepted by `metrics`.
pub const FLAGS: &[&str] = &["in", "diff", "rollup", "tree", "out", "json"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "metrics METRICS.json [--diff EARLIER.json] [--rollup k1,k2] \
                         [--tree k1,k2] [--out ROLLED.json] [--json]";

fn load(path: &str) -> Result<MetricsSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("bad metrics file {path}: {e}"))
}

fn split_keys(raw: &str) -> Vec<&str> {
    raw.split(',').map(str::trim).filter(|k| !k.is_empty()).collect()
}

/// Flat text rendering of a (rolled-up) snapshot: one line per metric
/// cell, labels inline.
fn render_flat(snapshot: &MetricsSnapshot) -> String {
    fn labels(pairs: &[(String, String)]) -> String {
        if pairs.is_empty() {
            String::new()
        } else {
            let inner: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{{{}}}", inner.join(","))
        }
    }
    let mut out = String::new();
    for c in &snapshot.counters {
        out.push_str(&format!("counter {}{} = {}\n", c.name, labels(&c.labels), c.value));
    }
    for g in &snapshot.gauges {
        out.push_str(&format!("gauge   {}{} = {:.4}\n", g.name, labels(&g.labels), g.value));
    }
    for h in &snapshot.histograms {
        out.push_str(&format!(
            "hist    {}{} : count {} sum {:.6} p50 {:.6} p99 {:.6}\n",
            h.name,
            labels(&h.labels),
            h.histogram.count,
            h.histogram.sum,
            h.histogram.p50,
            h.histogram.p99,
        ));
    }
    out
}

/// Runs the command: loads a snapshot, optionally subtracts an earlier one
/// (`--diff`), then prints either a hierarchical rollup tree (`--tree`) or
/// a flat rollup onto the given label keys (`--rollup`, default: grand
/// totals per metric name).
///
/// # Errors
///
/// Returns a message for bad flags, unreadable/malformed snapshot files,
/// or combining `--rollup` with `--tree`.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let path = match (args.positional.first(), args.get("in")) {
        (Some(p), _) => p.as_str(),
        (None, Some(p)) => p,
        (None, None) => return Err(format!("usage: {USAGE}")),
    };
    if args.get("rollup").is_some() && args.get("tree").is_some() {
        return Err("--rollup and --tree are mutually exclusive".to_owned());
    }
    let mut snapshot = load(path)?;
    if let Some(earlier_path) = args.get("diff") {
        let earlier = load(earlier_path)?;
        snapshot = snapshot.diff(&earlier);
    }

    let mut output = String::new();
    let rolled;
    if let Some(raw) = args.get("tree") {
        let hierarchy = split_keys(raw);
        let tree = snapshot.rollup_tree(&hierarchy);
        output.push_str(&tree.render());
        rolled = tree.metrics;
    } else {
        let keys = args.get("rollup").map(split_keys).unwrap_or_default();
        rolled = snapshot.rollup(&keys);
        if args.has("json") {
            output.push_str(&serde_json::to_string_pretty(&rolled).map_err(|e| e.to_string())?);
            output.push('\n');
        } else {
            output.push_str(&render_flat(&rolled));
        }
    }
    if let Some(out_path) = args.get("out") {
        let json = serde_json::to_string_pretty(&rolled).map_err(|e| e.to_string())?;
        crate::output::write_report(out_path, json)?;
        output.push_str(&format!("rollup written to {out_path}\n"));
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    /// Runs a short soak with `--metrics-out` to get a real snapshot file.
    fn metrics_file(name: &str) -> String {
        let path = tmp(name);
        let args = ParsedArgs::parse([
            "soak",
            "--ops",
            "400",
            "--seed",
            "5",
            "--out",
            &tmp(&format!("{name}.report.json")),
            "--metrics-out",
            &path,
        ])
        .unwrap();
        super::super::soak::run(&args).unwrap();
        path
    }

    #[test]
    fn rolls_a_real_snapshot_onto_prefix_keys() {
        let path = metrics_file("metrics-roll.json");
        // Grand totals: every cell collapses to one line per metric name.
        let args = ParsedArgs::parse(["metrics", &path]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("counter "), "{out}");
        // Per-algorithm rollup keeps the algorithm label.
        let args = ParsedArgs::parse(["metrics", &path, "--rollup", "algorithm"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("{algorithm=") || out.contains("counter "), "{out}");
        // JSON output parses back into a snapshot.
        let args = ParsedArgs::parse(["metrics", &path, "--json"]).unwrap();
        let rolled: MetricsSnapshot = serde_json::from_str(&run(&args).unwrap()).unwrap();
        assert!(!rolled.counters.is_empty());
    }

    #[test]
    fn tree_renders_a_hierarchy_and_out_writes_json() {
        let path = metrics_file("metrics-tree.json");
        let rolled_path = tmp("metrics-rolled.json");
        let args =
            ParsedArgs::parse(["metrics", &path, "--tree", "algorithm", "--out", &rolled_path])
                .unwrap();
        let out = run(&args).unwrap();
        assert!(out.starts_with("total"), "{out}");
        assert!(out.contains("rollup written to"), "{out}");
        let rolled: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&rolled_path).unwrap()).unwrap();
        assert!(!rolled.counters.is_empty());
    }

    #[test]
    fn diff_subtracts_the_earlier_snapshot() {
        let path = metrics_file("metrics-diff.json");
        // Diffing a snapshot against itself zeroes every counter.
        let args = ParsedArgs::parse(["metrics", &path, "--diff", &path, "--json"]).unwrap();
        let rolled: MetricsSnapshot = serde_json::from_str(&run(&args).unwrap()).unwrap();
        assert!(rolled.counters.iter().all(|c| c.value == 0), "{rolled:?}");
    }

    #[test]
    fn rejects_bad_usage() {
        let args = ParsedArgs::parse(["metrics"]).unwrap();
        assert!(run(&args).unwrap_err().contains("usage"));
        let args =
            ParsedArgs::parse(["metrics", "m.json", "--rollup", "a", "--tree", "b"]).unwrap();
        assert!(run(&args).unwrap_err().contains("mutually exclusive"));
        let bad = tmp("metrics-bad.json");
        std::fs::write(&bad, "nope").unwrap();
        let args = ParsedArgs::parse(["metrics", &bad]).unwrap();
        assert!(run(&args).unwrap_err().contains("bad metrics file"));
    }
}
