//! `cubefit check` — audit a placement dump for robustness.

use crate::args::ParsedArgs;
use cubefit_core::validity::{self, FailoverSemantics};
use cubefit_core::PlacementDump;

/// Flags accepted by `check`.
pub const FLAGS: &[&str] = &["failures", "render"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "check PLACEMENT.json [--failures F] [--render N]";

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, unreadable dumps, or if the placement
/// violates the robustness condition (exit is non-zero so scripts can gate
/// on it).
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let path = args.positional.first().ok_or_else(|| format!("usage: {USAGE}"))?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let dump: PlacementDump =
        serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    let placement = dump.to_placement().map_err(|e| format!("rebuilding placement: {e}"))?;

    let failures: usize =
        args.get_or("failures", placement.gamma() - 1, "an integer").map_err(|e| e.to_string())?;

    let mut output = String::new();
    let stats = placement.stats();
    output.push_str(&format!(
        "{} tenants on {} servers, γ={}, utilization {:.1}%\n",
        stats.tenants,
        stats.open_bins,
        placement.gamma(),
        stats.mean_utilization * 100.0
    ));

    let report = validity::check(&placement);
    output.push_str(&format!(
        "robustness (any {} failures): {} (worst margin {:+.4})\n",
        placement.gamma() - 1,
        if report.is_robust() { "OK" } else { "VIOLATED" },
        report.worst_margin
    ));
    for violation in report.violations.iter().take(5) {
        output.push_str(&format!(
            "  server {} would carry {:.4} (level {:.4} + failover {:.4})\n",
            violation.bin.index(),
            violation.total(),
            violation.level,
            violation.failover
        ));
    }

    let worst = validity::worst_failure_set(&placement, failures, FailoverSemantics::EvenSplit);
    let impact = validity::simulate_failures(&placement, &worst, FailoverSemantics::EvenSplit);
    output.push_str(&format!(
        "worst {failures}-failure set {:?}: hottest survivor at load {:.4}, {} tenants unavailable\n",
        worst.iter().map(|b| b.index()).collect::<Vec<_>>(),
        impact.max_load(),
        impact.unavailable_tenants.len()
    ));

    if let Some(n) = args.get("render") {
        let max_servers: usize =
            n.parse().map_err(|_| "--render expects a server count".to_string())?;
        output.push('\n');
        output.push_str(&cubefit_core::render::render(
            &placement,
            cubefit_core::render::RenderOptions { max_servers, show_tenants: false },
        ));
    }

    if report.is_robust() {
        Ok(output)
    } else {
        Err(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Placement, Tenant, TenantId};

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_dump(name: &str, placement: &Placement) -> String {
        let path = tmp(name);
        let dump = PlacementDump::from_placement(placement);
        std::fs::write(&path, serde_json::to_string(&dump).unwrap()).unwrap();
        path
    }

    #[test]
    fn robust_placement_passes() {
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap());
        for id in 0..20u64 {
            cf.place(Tenant::new(TenantId::new(id), Load::new(0.3).unwrap())).unwrap();
        }
        let path = write_dump("check-ok.json", cf.placement());
        let args = ParsedArgs::parse(["check", path.as_str()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("robustness (any 1 failures): OK"));
        assert!(out.contains("hottest survivor"));

        let rendered =
            run(&ParsedArgs::parse(["check", path.as_str(), "--render", "4"]).unwrap()).unwrap();
        assert!(rendered.contains('['));
        assert!(rendered.contains("level"));
    }

    #[test]
    fn unsafe_placement_fails_with_details() {
        // Hand-build a placement that overloads under failover.
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        for id in 0..2u64 {
            p.place_tenant(&Tenant::new(TenantId::new(id), Load::new(0.9).unwrap()), &[a, b])
                .unwrap();
        }
        let path = write_dump("check-bad.json", &p);
        let args = ParsedArgs::parse(["check", path.as_str()]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("VIOLATED"));
        assert!(err.contains("would carry"));
    }

    #[test]
    fn missing_file_is_an_error() {
        let args = ParsedArgs::parse(["check", "/nonexistent.json"]).unwrap();
        assert!(run(&args).unwrap_err().contains("reading"));
    }

    #[test]
    fn requires_positional() {
        let args = ParsedArgs::parse(["check"]).unwrap();
        assert!(run(&args).unwrap_err().contains("usage"));
    }
}
