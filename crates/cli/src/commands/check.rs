//! `cubefit check` — audit a placement dump for robustness.

use crate::args::ParsedArgs;
use cubefit_core::validity::{self, FailoverSemantics};
use cubefit_core::{oracle, BinId, Load, Placement, PlacementDump, Tenant, TenantId};

/// Flags accepted by `check`.
pub const FLAGS: &[&str] = &["failures", "render", "audit"];

/// Usage line shown in `--help`.
pub const USAGE: &str = "check PLACEMENT.json [--failures F] [--render N] [--audit]";

/// Runs the command, returning its stdout text.
///
/// # Errors
///
/// Returns a message for bad flags, unreadable dumps, or if the placement
/// violates the robustness condition (exit is non-zero so scripts can gate
/// on it).
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    args.expect_only(FLAGS).map_err(|e| e.to_string())?;
    let path = args.positional.first().ok_or_else(|| format!("usage: {USAGE}"))?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let dump: PlacementDump =
        serde_json::from_str(&json).map_err(|e| parse_error(path, &json, &e))?;
    let placement = dump.to_placement().map_err(|e| format!("rebuilding placement: {e}"))?;

    let failures: usize =
        args.get_or("failures", placement.gamma() - 1, "an integer").map_err(|e| e.to_string())?;

    let mut output = String::new();
    let stats = placement.stats();
    output.push_str(&format!(
        "{} tenants on {} servers, γ={}, utilization {:.1}%\n",
        stats.tenants,
        stats.open_bins,
        placement.gamma(),
        stats.mean_utilization * 100.0
    ));

    let report = validity::check(&placement);
    output.push_str(&format!(
        "robustness (any {} failures): {} (worst margin {:+.4})\n",
        placement.gamma() - 1,
        if report.is_robust() { "OK" } else { "VIOLATED" },
        report.worst_margin
    ));
    for violation in report.violations.iter().take(5) {
        output.push_str(&format!(
            "  server {} would carry {:.4} (level {:.4} + failover {:.4})\n",
            violation.bin.index(),
            violation.total(),
            violation.level,
            violation.failover
        ));
    }

    let worst = validity::worst_failure_set(&placement, failures, FailoverSemantics::EvenSplit);
    let impact = validity::simulate_failures(&placement, &worst, FailoverSemantics::EvenSplit);
    output.push_str(&format!(
        "worst {failures}-failure set {:?}: hottest survivor at load {:.4}, {} tenants unavailable\n",
        worst.iter().map(|b| b.index()).collect::<Vec<_>>(),
        impact.max_load(),
        impact.unavailable_tenants.len()
    ));

    if args.has("audit") {
        output.push_str(&replay_audit(&dump)?);
    }

    if let Some(n) = args.get("render") {
        let max_servers: usize =
            n.parse().map_err(|_| "--render expects a server count".to_string())?;
        output.push('\n');
        output.push_str(&cubefit_core::render::render(
            &placement,
            cubefit_core::render::RenderOptions { max_servers, show_tenants: false },
        ));
    }

    if report.is_robust() {
        Ok(output)
    } else {
        Err(output)
    }
}

/// Distinguishes a *truncated* dump (a partial write: the JSON ends
/// mid-document) from other parse failures, naming the byte offset where
/// the document stopped so the operator can see how much survived.
/// Truncation should no longer occur for files this tool writes — every
/// report goes through an atomic temp-file + rename — so a truncated
/// dump points at a file copied mid-write or an interrupted third-party
/// writer.
fn parse_error(path: &str, json: &str, error: &serde_json::Error) -> String {
    let detail = error.to_string();
    // A parse failure positioned at the very end of the input means the
    // document stopped mid-way, whatever token it stopped inside.
    let failed_at_end = detail
        .rsplit("at byte ")
        .next()
        .and_then(|n| n.trim().parse::<usize>().ok())
        .is_some_and(|offset| offset >= json.len());
    if failed_at_end {
        format!(
            "truncated dump {path}: input ends mid-document at byte {} — the file is a \
             partial write (was it copied while being written?); re-export it or recover the \
             run's journal with cubefit recover",
            json.len()
        )
    } else {
        format!("parsing {path}: {detail}")
    }
}

/// Replays the dump's tenants one at a time through a fresh placement,
/// cross-checking the incremental bookkeeping against the differential
/// oracle after every step. This is the offline half of
/// [`cubefit_core::AuditedConsolidator`]: a panic trace from a fuzz run
/// pastes straight into a dump file and replays here.
fn replay_audit(dump: &PlacementDump) -> Result<String, String> {
    let mut placement = Placement::new(dump.gamma);
    for _ in 0..dump.servers {
        placement.open_bin(None);
    }
    for (step, entry) in dump.tenants.iter().enumerate() {
        let tenant = Tenant::new(
            TenantId::new(entry.tenant),
            Load::new(entry.load).map_err(|e| format!("tenant {}: {e}", entry.tenant))?,
        );
        let bins: Vec<BinId> = entry.servers.iter().map(|&s| BinId::new(s)).collect();
        placement
            .place_tenant(&tenant, &bins)
            .map_err(|e| format!("replaying tenant {}: {e}", entry.tenant))?;
        if let Err(divergences) = oracle::audit(&placement) {
            let mut msg = format!(
                "audit: incremental bookkeeping diverged from the oracle after step {} (tenant {}):\n",
                step + 1,
                entry.tenant
            );
            for d in &divergences {
                msg.push_str(&format!("  {d}\n"));
            }
            return Err(msg);
        }
    }
    Ok(format!(
        "audit: oracle agrees with incremental bookkeeping after each of {} placements\n",
        dump.tenants.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubefit_core::{Consolidator, CubeFit, CubeFitConfig, Load, Placement, Tenant, TenantId};

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cubefit-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_dump(name: &str, placement: &Placement) -> String {
        let path = tmp(name);
        let dump = PlacementDump::from_placement(placement);
        std::fs::write(&path, serde_json::to_string(&dump).unwrap()).unwrap();
        path
    }

    #[test]
    fn robust_placement_passes() {
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap());
        for id in 0..20u64 {
            cf.place(Tenant::new(TenantId::new(id), Load::new(0.3).unwrap())).unwrap();
        }
        let path = write_dump("check-ok.json", cf.placement());
        let args = ParsedArgs::parse(["check", path.as_str()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("robustness (any 1 failures): OK"));
        assert!(out.contains("hottest survivor"));

        let rendered =
            run(&ParsedArgs::parse(["check", path.as_str(), "--render", "4"]).unwrap()).unwrap();
        assert!(rendered.contains('['));
        assert!(rendered.contains("level"));
    }

    #[test]
    fn unsafe_placement_fails_with_details() {
        // Hand-build a placement that overloads under failover.
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        for id in 0..2u64 {
            p.place_tenant(&Tenant::new(TenantId::new(id), Load::new(0.9).unwrap()), &[a, b])
                .unwrap();
        }
        let path = write_dump("check-bad.json", &p);
        let args = ParsedArgs::parse(["check", path.as_str()]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("VIOLATED"));
        assert!(err.contains("would carry"));
    }

    #[test]
    fn audit_flag_replays_through_the_oracle() {
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(3).classes(5).build().unwrap());
        for id in 0..15u64 {
            cf.place(Tenant::new(TenantId::new(id), Load::new(0.25).unwrap())).unwrap();
        }
        let path = write_dump("check-audit.json", cf.placement());
        let out = run(&ParsedArgs::parse(["check", path.as_str(), "--audit"]).unwrap()).unwrap();
        assert!(out.contains(
            "audit: oracle agrees with incremental bookkeeping after each of 15 placements"
        ));
        // Without the switch the audit line is absent.
        let out = run(&ParsedArgs::parse(["check", path.as_str()]).unwrap()).unwrap();
        assert!(!out.contains("audit:"));
    }

    #[test]
    fn audit_runs_on_unsound_but_consistent_dumps() {
        // A placement that violates Theorem 1 still replays cleanly: the
        // audit checks bookkeeping consistency, and the robustness verdict
        // (incremental and oracle agreeing on "not robust") is reported by
        // the main check. `run` returns Err because of the violation, but
        // the audit line confirms the oracle agreed at every step.
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        for id in 0..2u64 {
            p.place_tenant(&Tenant::new(TenantId::new(id), Load::new(0.9).unwrap()), &[a, b])
                .unwrap();
        }
        let path = write_dump("check-audit-unsound.json", &p);
        let err =
            run(&ParsedArgs::parse(["check", path.as_str(), "--audit"]).unwrap()).unwrap_err();
        assert!(err.contains("VIOLATED"));
        assert!(err.contains("audit: oracle agrees with incremental bookkeeping"));
    }

    #[test]
    fn audit_flag_rejects_corrupt_dumps_before_replay() {
        // A tenant referencing a server beyond the declared count fails
        // dump validation before the per-step audit begins.
        let mut p = Placement::new(2);
        let a = p.open_bin(None);
        let b = p.open_bin(None);
        p.place_tenant(&Tenant::new(TenantId::new(0), Load::new(0.4).unwrap()), &[a, b]).unwrap();
        let mut dump = PlacementDump::from_placement(&p);
        dump.tenants[0].servers[1] = 9;
        let path = tmp("check-audit-bad.json");
        std::fs::write(&path, serde_json::to_string(&dump).unwrap()).unwrap();
        let err =
            run(&ParsedArgs::parse(["check", path.as_str(), "--audit"]).unwrap()).unwrap_err();
        assert!(err.contains("rebuilding placement"));
    }

    /// Regression: dumps carrying out-of-range loads (a zero from a buggy
    /// writer, a >1 load from a drifted trace) must be rejected with the
    /// typed load-validation error, not silently rebuilt.
    #[test]
    fn rejects_dumps_with_invalid_loads() {
        for bad_load in ["0.0", "-0.25", "2.0"] {
            let path = tmp(&format!("check-bad-load-{bad_load}.json"));
            let json = format!(
                r#"{{"gamma":2,"servers":2,"tenants":[{{"tenant":0,"load":{bad_load},"servers":[0,1]}}]}}"#
            );
            std::fs::write(&path, json).unwrap();
            let err = run(&ParsedArgs::parse(["check", path.as_str()]).unwrap()).unwrap_err();
            assert!(
                err.contains("outside the valid range"),
                "load {bad_load} must hit the typed validation error, got: {err}"
            );
        }
    }

    /// Regression: a dump carrying a bare `NaN` load token (the classic
    /// artefact of a writer formatting `f64::NAN` with `{}`) must surface a
    /// typed parse error — never reach a comparator and never panic. JSON has
    /// no NaN literal, so this is rejected at the parsing layer.
    #[test]
    fn rejects_dumps_with_nan_loads() {
        let path = tmp("check-nan-load.json");
        let json = r#"{"gamma":2,"servers":2,"tenants":[{"tenant":0,"load":NaN,"servers":[0,1]}]}"#;
        std::fs::write(&path, json).unwrap();
        let err = run(&ParsedArgs::parse(["check", path.as_str()]).unwrap()).unwrap_err();
        assert!(err.contains("parsing"), "NaN load must hit the typed parse error, got: {err}");
    }

    /// Satellite: a dump cut off mid-write (the artefact `write_atomic`
    /// exists to prevent) is reported as truncation, naming the byte
    /// offset where the document stopped — not as a generic parse error.
    #[test]
    fn truncated_dump_is_a_typed_error_naming_the_byte_offset() {
        let mut cf =
            CubeFit::new(CubeFitConfig::builder().replication(2).classes(5).build().unwrap());
        for id in 0..10u64 {
            cf.place(Tenant::new(TenantId::new(id), Load::new(0.3).unwrap())).unwrap();
        }
        let json = serde_json::to_string(&PlacementDump::from_placement(cf.placement())).unwrap();
        let path = tmp("check-truncated.json");
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let err = run(&ParsedArgs::parse(["check", path.as_str()]).unwrap()).unwrap_err();
        assert!(err.contains("truncated dump"), "{err}");
        assert!(err.contains(&format!("at byte {}", json.len() / 2)), "{err}");
        assert!(err.contains("cubefit recover"), "{err}");
        // Non-truncation corruption still reports as a parse error.
        let garbled = tmp("check-garbled.json");
        std::fs::write(&garbled, "{\"gamma\": nope}").unwrap();
        let err = run(&ParsedArgs::parse(["check", garbled.as_str()]).unwrap()).unwrap_err();
        assert!(err.contains("parsing"), "{err}");
    }

    #[test]
    fn missing_file_is_an_error() {
        let args = ParsedArgs::parse(["check", "/nonexistent.json"]).unwrap();
        assert!(run(&args).unwrap_err().contains("reading"));
    }

    #[test]
    fn requires_positional() {
        let args = ParsedArgs::parse(["check"]).unwrap();
        assert!(run(&args).unwrap_err().contains("usage"));
    }
}
