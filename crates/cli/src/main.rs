//! Entry point for the `cubefit` binary.

use cubefit_cli::args::ParsedArgs;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(tokens) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("error: {error}\n\n{}", cubefit_cli::help());
            std::process::exit(2);
        }
    };
    match cubefit_cli::dispatch(&parsed) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("{error}");
            std::process::exit(1);
        }
    }
}
