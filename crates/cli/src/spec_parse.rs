//! Parsing of algorithm and distribution spec strings.
//!
//! The CLI accepts compact spec strings:
//!
//! * algorithms — `cubefit`, `cubefit:K=5`, `rfi`, `rfi:mu=0.9`,
//!   `bestfit`, `firstfit`, `worstfit`, `nextfit`, `randomfit:seed=3`;
//! * distributions — `uniform:1-15`, `zipf:3`, `constant:8`;
//! * drift profiles — `walk`, `walk:4`, `burst`, `burst:m=20,p=0.01`.

use cubefit_sim::{AlgorithmSpec, DistributionSpec};
use cubefit_workload::DriftProfile;
use std::collections::HashMap;

/// Parses `name[:k=v[,k=v…]]` into name + options.
fn split_spec(raw: &str) -> (String, HashMap<String, String>) {
    let mut parts = raw.splitn(2, ':');
    let name = parts.next().unwrap_or_default().to_ascii_lowercase();
    let mut options = HashMap::new();
    if let Some(rest) = parts.next() {
        for pair in rest.split(',') {
            match pair.split_once('=') {
                Some((k, v)) => {
                    options.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
                }
                None => {
                    // Bare option value, e.g. "zipf:3" or "uniform:1-15".
                    options.insert(String::new(), pair.trim().to_string());
                }
            }
        }
    }
    (name, options)
}

/// Parses an algorithm spec string.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or bad options.
pub fn parse_algorithm(raw: &str, gamma: usize) -> Result<AlgorithmSpec, String> {
    let (name, options) = split_spec(raw);
    let get_usize = |key: &str, default: usize| -> Result<usize, String> {
        options.get(key).map_or(Ok(default), |v| {
            v.parse().map_err(|_| format!("{raw}: {key} must be an integer"))
        })
    };
    let get_f64 = |key: &str, default: f64| -> Result<f64, String> {
        options.get(key).map_or(Ok(default), |v| {
            v.parse().map_err(|_| format!("{raw}: {key} must be a number"))
        })
    };
    match name.as_str() {
        "cubefit" => Ok(AlgorithmSpec::CubeFit { gamma, classes: get_usize("k", 10)? }),
        "rfi" => Ok(AlgorithmSpec::Rfi { gamma, mu: get_f64("mu", 0.85)? }),
        "bestfit" => Ok(AlgorithmSpec::BestFit { gamma }),
        "firstfit" => Ok(AlgorithmSpec::FirstFit { gamma }),
        "worstfit" => Ok(AlgorithmSpec::WorstFit { gamma }),
        "nextfit" => Ok(AlgorithmSpec::NextFit { gamma }),
        "randomfit" => Ok(AlgorithmSpec::RandomFit { gamma, seed: get_usize("seed", 0)? as u64 }),
        other => Err(format!(
            "unknown algorithm '{other}' (expected cubefit, rfi, bestfit, firstfit, worstfit, nextfit, or randomfit)"
        )),
    }
}

/// Parses a distribution spec string.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or bad options.
pub fn parse_distribution(raw: &str) -> Result<DistributionSpec, String> {
    let (name, options) = split_spec(raw);
    let bare = options.get("").cloned().unwrap_or_default();
    match name.as_str() {
        "uniform" => {
            let range = if bare.is_empty() { "1-15".to_string() } else { bare };
            let (lo, hi) = range
                .split_once('-')
                .ok_or_else(|| format!("{raw}: uniform expects a range like 1-15"))?;
            let min: u32 = lo.trim().parse().map_err(|_| format!("{raw}: bad range start"))?;
            let max: u32 = hi.trim().parse().map_err(|_| format!("{raw}: bad range end"))?;
            if min == 0 || min > max {
                return Err(format!("{raw}: range must satisfy 1 ≤ min ≤ max"));
            }
            Ok(DistributionSpec::Uniform { min, max })
        }
        "zipf" => {
            let exponent: f64 = if bare.is_empty() {
                3.0
            } else {
                bare.parse().map_err(|_| format!("{raw}: zipf expects a numeric exponent"))?
            };
            if !(exponent.is_finite() && exponent >= 0.0) {
                return Err(format!("{raw}: exponent must be non-negative"));
            }
            Ok(DistributionSpec::Zipf { exponent })
        }
        "constant" => {
            let clients: u32 =
                bare.parse().map_err(|_| format!("{raw}: constant expects a client count"))?;
            if clients == 0 {
                return Err(format!("{raw}: client count must be positive"));
            }
            Ok(DistributionSpec::Constant { clients })
        }
        other => {
            Err(format!("unknown distribution '{other}' (expected uniform, zipf, or constant)"))
        }
    }
}

/// Parses a drift-profile spec string: `walk[:MAX_STEP]` for a symmetric
/// client-count random walk, `burst[:m=MAGNITUDE,p=PROBABILITY]` for
/// flash-crowd bursts that decay back to baseline.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or bad options.
pub fn parse_drift_profile(raw: &str) -> Result<DriftProfile, String> {
    let (name, options) = split_spec(raw);
    let bare = options.get("").cloned().unwrap_or_default();
    match name.as_str() {
        "walk" => {
            let max_step: u32 = if bare.is_empty() {
                2
            } else {
                bare.parse().map_err(|_| format!("{raw}: walk expects an integer step size"))?
            };
            Ok(DriftProfile::RandomWalk { max_step })
        }
        "burst" => {
            let magnitude: u32 = options.get("m").map_or(Ok(20), |v| {
                v.parse().map_err(|_| format!("{raw}: m must be an integer client count"))
            })?;
            let probability: f64 = options.get("p").map_or(Ok(0.01), |v| {
                v.parse().map_err(|_| format!("{raw}: p must be a number"))
            })?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!("{raw}: p must lie in [0, 1]"));
            }
            Ok(DriftProfile::Burst { magnitude, probability })
        }
        other => Err(format!("unknown drift profile '{other}' (expected walk or burst)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_specs() {
        assert_eq!(
            parse_algorithm("cubefit", 2).unwrap(),
            AlgorithmSpec::CubeFit { gamma: 2, classes: 10 }
        );
        assert_eq!(
            parse_algorithm("cubefit:k=5", 3).unwrap(),
            AlgorithmSpec::CubeFit { gamma: 3, classes: 5 }
        );
        assert_eq!(
            parse_algorithm("RFI:mu=0.9", 2).unwrap(),
            AlgorithmSpec::Rfi { gamma: 2, mu: 0.9 }
        );
        assert_eq!(
            parse_algorithm("randomfit:seed=7", 2).unwrap(),
            AlgorithmSpec::RandomFit { gamma: 2, seed: 7 }
        );
        assert!(parse_algorithm("quantumfit", 2).is_err());
        assert!(parse_algorithm("cubefit:k=lots", 2).is_err());
    }

    #[test]
    fn distribution_specs() {
        assert_eq!(
            parse_distribution("uniform:1-15").unwrap(),
            DistributionSpec::Uniform { min: 1, max: 15 }
        );
        assert_eq!(
            parse_distribution("uniform").unwrap(),
            DistributionSpec::Uniform { min: 1, max: 15 }
        );
        assert_eq!(
            parse_distribution("zipf:2.5").unwrap(),
            DistributionSpec::Zipf { exponent: 2.5 }
        );
        assert_eq!(parse_distribution("zipf").unwrap(), DistributionSpec::Zipf { exponent: 3.0 });
        assert_eq!(
            parse_distribution("constant:8").unwrap(),
            DistributionSpec::Constant { clients: 8 }
        );
        assert!(parse_distribution("uniform:15-1").is_err());
        assert!(parse_distribution("uniform:0-5").is_err());
        assert!(parse_distribution("pareto:2").is_err());
        assert!(parse_distribution("zipf:-1").is_err());
        assert!(parse_distribution("constant:0").is_err());
    }

    #[test]
    fn drift_profile_specs() {
        assert_eq!(parse_drift_profile("walk").unwrap(), DriftProfile::RandomWalk { max_step: 2 });
        assert_eq!(
            parse_drift_profile("walk:5").unwrap(),
            DriftProfile::RandomWalk { max_step: 5 }
        );
        assert_eq!(
            parse_drift_profile("burst").unwrap(),
            DriftProfile::Burst { magnitude: 20, probability: 0.01 }
        );
        assert_eq!(
            parse_drift_profile("burst:m=12,p=0.05").unwrap(),
            DriftProfile::Burst { magnitude: 12, probability: 0.05 }
        );
        assert!(parse_drift_profile("tides").is_err());
        assert!(parse_drift_profile("walk:fast").is_err());
        assert!(parse_drift_profile("burst:p=1.5").is_err());
    }
}
