//! Atomic report writing shared by every subcommand.
//!
//! Reports, dumps, scenarios, and traces are operator-facing artifacts —
//! a crash (or Ctrl-C) mid-write must never leave a truncated JSON file
//! that a later `cubefit check` or `cubefit replay` chokes on. Every
//! command therefore funnels its file output through [`write_report`],
//! which wraps [`cubefit_core::write_atomic`] (temp file + fsync +
//! rename): the destination is either the previous version or the
//! complete new one, never a prefix.

/// Atomically writes `contents` to `path`, formatting I/O failures as
/// the CLI's standard `writing {path}: {error}` message.
pub(crate) fn write_report(path: &str, contents: impl AsRef<[u8]>) -> Result<(), String> {
    cubefit_core::write_atomic(path, contents).map_err(|e| format!("writing {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces_files() {
        let dir = std::env::temp_dir().join("cubefit-cli-output-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json").to_string_lossy().into_owned();
        write_report(&path, "{\"a\":1}").unwrap();
        write_report(&path, "{\"a\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        // No temp file is left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn errors_name_the_path() {
        let err = write_report("/nonexistent-dir/report.json", "x").unwrap_err();
        assert!(err.contains("writing /nonexistent-dir/report.json"), "{err}");
    }
}
