//! End-to-end observability pipeline through the public `dispatch`
//! surface: soak → streamed trace → analyze → metrics rollup, and the
//! failure path soak → scenario → replay → shrink → pinned regression.

use cubefit_cli::args::ParsedArgs;
use cubefit_cli::dispatch;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("cubefit-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn run(argv: &[&str]) -> Result<String, String> {
    dispatch(&ParsedArgs::parse(argv.iter().copied()).unwrap())
}

#[test]
fn clean_soak_analyzes_clean_and_rolls_up() {
    let trace = tmp("pipeline.jsonl");
    let metrics = tmp("pipeline-metrics.json");
    let report = tmp("pipeline-report.json");
    let analysis = tmp("pipeline-analysis.json");

    let out = run(&[
        "soak",
        "--ops",
        "3000",
        "--seed",
        "42",
        "--audit-every",
        "500",
        "--checkpoint-every",
        "250",
        "--out",
        &report,
        "--trace-out",
        &trace,
        "--metrics-out",
        &metrics,
    ])
    .unwrap();
    assert!(out.contains("robust true"), "{out}");

    // The analyzer must agree the streamed trace is clean — the same gate
    // CI's soak-smoke job relies on.
    let out = run(&["analyze", &trace, "--expect-clean", "--out", &analysis]).unwrap();
    assert!(out.contains("events:"), "{out}");

    // The rollup view consumes the metrics snapshot the run wrote.
    let out = run(&["metrics", &metrics, "--tree", "algorithm"]).unwrap();
    assert!(out.starts_with("total"), "{out}");
    // Diff of a snapshot against itself zeroes the interval.
    let out = run(&["metrics", &metrics, "--diff", &metrics, "--json"]).unwrap();
    assert!(out.contains("\"counters\""), "{out}");
}

#[test]
fn failing_soak_shrinks_to_a_pinned_regression() {
    let scenario = tmp("pipeline-scenario.json");
    let pinned = tmp("pipeline-pinned.json");

    let err = run(&[
        "soak",
        "--ops",
        "2000",
        "--seed",
        "11",
        "--checkpoint-every",
        "100",
        "--inject-at",
        "731",
        "--out",
        &tmp("pipeline-fail-report.json"),
        "--scenario-out",
        &scenario,
    ])
    .unwrap_err();
    assert!(err.contains("soak FAILED"), "{err}");

    let out = run(&["replay", &scenario, "--shrink", "--out", &pinned]).unwrap();
    assert!(out.contains("first failing op is 731"), "{out}");

    // The pinned one-op scenario is itself a standing regression test.
    let out = run(&["replay", &pinned]).unwrap();
    assert!(out.contains("failure at op 731"), "{out}");
}
