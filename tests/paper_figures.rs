//! Integration tests reproducing the paper's worked examples (Figs. 1–3).

use cubefit::core::validity::{self, FailoverSemantics};
use cubefit::core::{
    BinId, Consolidator, CubeFit, CubeFitConfig, Load, Placement, PlacementStage,
    Stage1Eligibility, Tenant, TenantId,
};

fn tenant(id: u64, load: f64) -> Tenant {
    Tenant::new(TenantId::new(id), Load::new(load).unwrap())
}

/// The paper's running sequence:
/// σ = ⟨a=0.6, b=0.3, c=0.6, d=0.78, e=0.12, f=0.36⟩.
const SIGMA: [f64; 6] = [0.6, 0.3, 0.6, 0.78, 0.12, 0.36];

/// Fig. 1(a): a γ=2 packing of σ on five servers; the caption walks through
/// the single-failure failovers.
#[test]
fn figure_1a_packing_is_robust_with_caption_failovers() {
    let mut p = Placement::new(2);
    let s: Vec<BinId> = (0..5).map(|_| p.open_bin(None)).collect();
    // Assignment consistent with the caption: when S1 fails, a → S2
    // (total 0.6+0.3), b and e → S3, f → S5.
    p.place_tenant(&tenant(0, SIGMA[0]), &[s[0], s[1]]).unwrap(); // a
    p.place_tenant(&tenant(1, SIGMA[1]), &[s[0], s[2]]).unwrap(); // b
    p.place_tenant(&tenant(2, SIGMA[2]), &[s[1], s[2]]).unwrap(); // c
    p.place_tenant(&tenant(3, SIGMA[3]), &[s[3], s[4]]).unwrap(); // d
    p.place_tenant(&tenant(4, SIGMA[4]), &[s[0], s[2]]).unwrap(); // e
    p.place_tenant(&tenant(5, SIGMA[5]), &[s[0], s[4]]).unwrap(); // f

    assert!(p.is_robust(), "Fig. 1(a) is a valid robust packing");
    assert_eq!(p.open_bins(), 5);

    // Caption: "if S1 fails, the load of replica a redirects to S2; this
    // gives a total load of 0.6 + 0.3 ≤ 1 for S2".
    let impact = validity::simulate_failures(&p, &[s[0]], FailoverSemantics::EvenSplit);
    let s2 = impact.loads.iter().find(|(b, _)| *b == s[1]).unwrap().1;
    assert!((s2 - 0.9).abs() < 1e-12);
    assert!(!impact.has_overload());
    assert!(impact.unavailable_tenants.is_empty());
}

/// Fig. 1(b): a γ=3 packing of σ on six servers surviving any *two*
/// simultaneous failures; the caption checks S1+S2 failing into S3.
#[test]
fn figure_1b_gamma3_packing_survives_double_failures() {
    let mut p = Placement::new(3);
    let s: Vec<BinId> = (0..6).map(|_| p.open_bin(None)).collect();
    p.place_tenant(&tenant(0, SIGMA[0]), &[s[0], s[1], s[2]]).unwrap(); // a
    p.place_tenant(&tenant(1, SIGMA[1]), &[s[0], s[3], s[5]]).unwrap(); // b
    p.place_tenant(&tenant(2, SIGMA[2]), &[s[1], s[4], s[5]]).unwrap(); // c
    p.place_tenant(&tenant(3, SIGMA[3]), &[s[2], s[3], s[4]]).unwrap(); // d
    p.place_tenant(&tenant(4, SIGMA[4]), &[s[0], s[1], s[5]]).unwrap(); // e
    p.place_tenant(&tenant(5, SIGMA[5]), &[s[0], s[3], s[5]]).unwrap(); // f

    assert!(p.is_robust(), "Fig. 1(b) tolerates any two failures");

    // Caption: "if S1 and S2 fail, the total load of replicas of a
    // redirects to S3, resulting in a total load of 0.46 + 2 × 0.2 ≤ 1".
    assert!((p.level(s[2]) - 0.46).abs() < 1e-12);
    let impact = validity::simulate_failures(&p, &[s[0], s[1]], FailoverSemantics::EvenSplit);
    let s3 = impact.loads.iter().find(|(b, _)| *b == s[2]).unwrap().1;
    assert!((s3 - (0.46 + 2.0 * 0.2)).abs() < 1e-12);
    assert!(!impact.has_overload());

    // Exhaustively: no pair of failures overloads any survivor.
    for i in 0..6 {
        for j in (i + 1)..6 {
            let impact =
                validity::simulate_failures(&p, &[s[i], s[j]], FailoverSemantics::Conservative);
            assert!(!impact.has_overload(), "failing S{} and S{}", i + 1, j + 1);
        }
    }
}

/// Fig. 2: stage-1 behaviour. Class-1 tenants a, b open and mature four
/// bins; tenant c m-fits the fuller pair (Best Fit); tenant d no longer
/// fits there and lands on a's bins.
#[test]
fn figure_2_stage1_best_fit() {
    let config = CubeFitConfig::builder()
        .replication(2)
        .classes(10)
        .stage1_eligibility(Stage1Eligibility::SmallerClassBins)
        .build()
        .unwrap();
    let mut cf = CubeFit::new(config);
    let a = cf.place(tenant(0, 0.70)).unwrap();
    let b = cf.place(tenant(1, 0.72)).unwrap();
    assert_eq!(a.stage, PlacementStage::Cube);
    assert_eq!(b.stage, PlacementStage::Cube);
    assert_eq!(cf.placement().open_bins(), 4, "four mature class-1 bins");

    let c = cf.place(tenant(2, 0.20)).unwrap();
    assert_eq!(c.stage, PlacementStage::MatureFit);
    let mut c_bins = c.bins.clone();
    c_bins.sort_unstable();
    let mut b_bins = b.bins.clone();
    b_bins.sort_unstable();
    assert_eq!(c_bins, b_bins, "Best Fit selects the fuller (b) pair");

    let d = cf.place(tenant(3, 0.24)).unwrap();
    assert_eq!(d.stage, PlacementStage::MatureFit);
    let mut d_bins = d.bins.clone();
    d_bins.sort_unstable();
    let mut a_bins = a.bins.clone();
    a_bins.sort_unstable();
    assert_eq!(d_bins, a_bins, "only a's pair still m-fits d");
    assert!(cf.placement().is_robust());
}

/// Fig. 3: 27 tenants of type τ=3 with γ=3 fill one cube generation of
/// 3 groups × 9 bins; no two servers share replicas of more than one
/// tenant (Lemma 1).
#[test]
fn figure_3_cube_placement_lemma1() {
    let config = CubeFitConfig::builder().replication(3).classes(10).build().unwrap();
    let mut cf = CubeFit::new(config);
    // Tenant load 0.55 → replicas 0.1833 ∈ (1/6, 1/5] → class 3.
    for id in 0..27 {
        let outcome = cf.place(tenant(id, 0.55)).unwrap();
        assert_eq!(outcome.stage, PlacementStage::Cube);
    }
    let p = cf.placement();
    assert_eq!(p.open_bins(), 27, "3 groups × 9 bins, all used");

    // Every bin holds exactly τ = 3 replicas.
    for bin in p.bins().filter(|b| !b.is_empty()) {
        assert_eq!(bin.replica_count(), 3);
    }

    // Lemma 1: any two bins share at most one tenant.
    let bins: Vec<BinId> = p.bins().filter(|b| !b.is_empty()).map(|b| b.id()).collect();
    for (i, &x) in bins.iter().enumerate() {
        for &y in &bins[i + 1..] {
            let x_tenants: std::collections::HashSet<TenantId> =
                p.bin(x).contents().iter().map(|(t, _)| *t).collect();
            let shared = p.bin(y).contents().iter().filter(|(t, _)| x_tenants.contains(t)).count();
            assert!(shared <= 1, "bins {x} and {y} share {shared} tenants");
        }
    }
    assert!(p.is_robust());

    // And the paper's example coordinates: the tenant at counter value 1
    // (I₃ = (001)₃) occupies cube cells (0,0,1), (1,0,0), (0,1,0).
    use cubefit::core::cube::CubeAddress;
    let addr = CubeAddress::from_counter(1, 3, 3);
    assert_eq!(addr.digits(), &[0, 0, 1]);
    assert_eq!(addr.shifted_right(1).digits(), &[1, 0, 0]);
    assert_eq!(addr.shifted_right(2).digits(), &[0, 1, 0]);
}

/// CubeFit itself packs σ robustly at both replication factors.
#[test]
fn cubefit_places_sigma_robustly() {
    for gamma in [2usize, 3] {
        let config = CubeFitConfig::builder().replication(gamma).classes(5).build().unwrap();
        let mut cf = CubeFit::new(config);
        for (id, &load) in SIGMA.iter().enumerate() {
            cf.place(tenant(id as u64, load)).unwrap();
        }
        let report = validity::check(cf.placement());
        assert!(report.is_robust(), "γ={gamma}: worst margin {}", report.worst_margin);
    }
}
