//! Property-based tests of the core invariants, spanning crates.

use cubefit::baselines::{BestFit, NextFit, Rfi};
use cubefit::core::validity::{self, FailoverSemantics};
use cubefit::core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant, TenantId, TinyPolicy};
use cubefit::workload::{trace, LoadModel, SequenceBuilder, TenantSpec, UniformClients, ZipfTable};
use proptest::prelude::*;

fn tenants(loads: &[f64]) -> Vec<Tenant> {
    loads
        .iter()
        .enumerate()
        .map(|(i, &l)| Tenant::new(TenantId::new(i as u64), Load::new(l).unwrap()))
        .collect()
}

fn load_strategy() -> impl Strategy<Value = f64> {
    // Loads spanning the full (0, 1] range including boundary-ish values.
    prop_oneof![0.0001f64..=1.0, Just(1.0), Just(0.5), Just(1.0 / 3.0), 0.001f64..0.1,]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: CubeFit placements are robust for arbitrary loads, for
    /// both replication factors and several class counts.
    #[test]
    fn cubefit_always_robust(
        loads in prop::collection::vec(load_strategy(), 1..120),
        gamma in 2usize..=3,
        classes in prop_oneof![Just(5usize), Just(7), Just(10)],
    ) {
        let config = CubeFitConfig::builder()
            .replication(gamma)
            .classes(classes)
            .build()
            .unwrap();
        let mut cf = CubeFit::new(config);
        for t in tenants(&loads) {
            cf.place(t).unwrap();
        }
        let report = validity::check(cf.placement());
        prop_assert!(report.is_robust(), "worst margin {}", report.worst_margin);
    }

    /// The theoretical tiny policy is robust too.
    #[test]
    fn cubefit_theoretical_policy_robust(
        loads in prop::collection::vec(0.0005f64..0.3, 1..100),
    ) {
        let config = CubeFitConfig::builder()
            .replication(2)
            .classes(12)
            .tiny_policy(TinyPolicy::Theoretical)
            .tiny_stage1(false)
            .build()
            .unwrap();
        let mut cf = CubeFit::new(config);
        for t in tenants(&loads) {
            cf.place(t).unwrap();
        }
        prop_assert!(cf.placement().is_robust());
    }

    /// Every replica lands on γ distinct servers and totals are conserved.
    #[test]
    fn placement_conservation(
        loads in prop::collection::vec(load_strategy(), 1..80),
        gamma in 2usize..=3,
    ) {
        let config = CubeFitConfig::builder().replication(gamma).classes(5).build().unwrap();
        let mut cf = CubeFit::new(config);
        for t in tenants(&loads) {
            let outcome = cf.place(t).unwrap();
            let mut bins = outcome.bins.clone();
            bins.sort_unstable();
            bins.dedup();
            prop_assert_eq!(bins.len(), gamma);
        }
        let p = cf.placement();
        let total: f64 = loads.iter().sum();
        prop_assert!((p.total_load() - total).abs() < 1e-9);
        let level_sum: f64 = p.bins().map(|b| b.level()).sum();
        prop_assert!((level_sum - total).abs() < 1e-9);
    }

    /// Baselines keep their promised robustness level.
    #[test]
    fn baselines_respect_reserves(
        loads in prop::collection::vec(load_strategy(), 1..80),
    ) {
        let ts = tenants(&loads);
        let mut best_fit = BestFit::new(3).unwrap();
        let mut next_fit = NextFit::new(3).unwrap();
        let mut rfi = Rfi::new(2, 0.85).unwrap();
        for t in &ts {
            best_fit.place(*t).unwrap();
            next_fit.place(*t).unwrap();
            rfi.place(*t).unwrap();
        }
        prop_assert!(best_fit.placement().is_robust());
        prop_assert!(next_fit.placement().is_robust());
        // γ = 2 single-failure reserve coincides with full robustness.
        prop_assert!(rfi.placement().is_robust());
    }

    /// Conservative failover dominates even-split failover on every bin.
    #[test]
    fn conservative_dominates_even_split(
        loads in prop::collection::vec(load_strategy(), 2..60),
        failures in 1usize..=2,
    ) {
        let config = CubeFitConfig::builder().replication(3).classes(5).build().unwrap();
        let mut cf = CubeFit::new(config);
        for t in tenants(&loads) {
            cf.place(t).unwrap();
        }
        let p = cf.placement();
        let failed = validity::worst_failure_set(p, failures, FailoverSemantics::Conservative);
        let cons = validity::simulate_failures(p, &failed, FailoverSemantics::Conservative);
        let even = validity::simulate_failures(p, &failed, FailoverSemantics::EvenSplit);
        for ((b1, l1), (b2, l2)) in cons.loads.iter().zip(even.loads.iter()) {
            prop_assert_eq!(b1, b2);
            prop_assert!(l1 + 1e-9 >= *l2, "conservative {l1} < even-split {l2}");
        }
        // Theorem 1 under the conservative bound for γ−1 failures.
        if failures <= 2 {
            prop_assert!(!cons.has_overload());
        }
    }

    /// The per-bin robustness checker agrees with explicit enumeration of
    /// all failure sets of size γ−1 on small instances.
    #[test]
    fn checker_matches_exhaustive_enumeration(
        loads in prop::collection::vec(load_strategy(), 2..25),
    ) {
        // Build a deliberately unsafe packing half the time by using a
        // single-failure reserve with γ = 3.
        let mut packer = BestFit::with_reserve(3, cubefit::baselines::ReserveMode::SingleFailure)
            .unwrap();
        for t in tenants(&loads) {
            packer.place(t).unwrap();
        }
        let p = packer.placement();
        let report = validity::check(p);

        // Exhaustive ground truth: any pair of failures overloading any bin?
        let bins: Vec<_> = p.bins().filter(|b| !b.is_empty()).map(|b| b.id()).collect();
        let mut any_overload = false;
        for i in 0..bins.len() {
            for j in (i + 1)..bins.len() {
                let impact = validity::simulate_failures(
                    p,
                    &[bins[i], bins[j]],
                    FailoverSemantics::Conservative,
                );
                any_overload |= impact.has_overload();
            }
        }
        prop_assert_eq!(report.is_robust(), !any_overload);
    }

    /// Binary traces roundtrip exactly for arbitrary spec lists.
    #[test]
    fn trace_roundtrip(
        specs in prop::collection::vec((0u64..10_000, 1u32..200, 0.0001f64..=1.0), 0..50),
    ) {
        let sequence: cubefit::workload::TenantSequence = specs
            .iter()
            .map(|&(id, clients, load)| TenantSpec {
                tenant: Tenant::new(TenantId::new(id), Load::new(load).unwrap()),
                clients,
            })
            .collect();
        let decoded = trace::decode(trace::encode(&sequence)).unwrap();
        prop_assert_eq!(decoded, sequence);
    }

    /// Zipf tables are proper distributions with monotone head mass.
    #[test]
    fn zipf_pmf_properties(n in 1u32..200, exponent in 0.0f64..4.0) {
        let z = ZipfTable::new(n, exponent);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for k in 1..n {
            prop_assert!(z.pmf(k) + 1e-12 >= z.pmf(k + 1), "pmf must be non-increasing");
        }
    }

    /// Workload generation is a pure function of its inputs.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), count in 0usize..200) {
        let build = || {
            SequenceBuilder::new(UniformClients::new(1, 52), LoadModel::normalized(52))
                .count(count)
                .seed(seed)
                .build()
        };
        prop_assert_eq!(build(), build());
    }
}
