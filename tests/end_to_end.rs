//! End-to-end integration tests spanning every crate: workload generation
//! → placement → failure analysis → cluster simulation → reporting.

use cubefit::cluster::{sim::assignments_from_placement, ClusterSim, QueryMix, SimConfig};
use cubefit::core::validity::{self, FailoverSemantics};
use cubefit::core::{Consolidator, TenantId};
use cubefit::sim::experiment::sequence_for;
use cubefit::sim::runner::run_sequence;
use cubefit::sim::{
    compare, run_failure_experiment, AlgorithmSpec, ComparisonConfig, CostModel, DistributionSpec,
    FailureExperimentConfig,
};
use cubefit::workload::LoadModel;
use std::collections::HashMap;

#[test]
fn headline_result_cubefit_beats_rfi() {
    // The paper's central claim at reduced scale: CubeFit uses fewer
    // servers than RFI on both evaluation distributions.
    let config = ComparisonConfig { tenants: 4_000, runs: 2, base_seed: 5, max_clients: 52 };
    for distribution in
        [DistributionSpec::Uniform { min: 1, max: 15 }, DistributionSpec::Zipf { exponent: 3.0 }]
    {
        let result = compare(
            &AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
            &AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
            &distribution,
            &config,
        )
        .unwrap();
        assert!(
            result.relative_difference_pct.mean > 5.0,
            "{}: relative difference {:?}",
            result.distribution,
            result.relative_difference_pct
        );
        assert!(result.servers_saved() > 0.0);
    }
}

#[test]
fn every_algorithm_handles_the_same_sequence() {
    let config = ComparisonConfig { tenants: 800, runs: 1, base_seed: 9, max_clients: 52 };
    let sequence = sequence_for(&DistributionSpec::Uniform { min: 1, max: 52 }, &config, 0);
    let lower_bound = sequence.total_load().ceil() as usize;
    for spec in [
        AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
        AlgorithmSpec::CubeFit { gamma: 3, classes: 5 },
        AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
        AlgorithmSpec::BestFit { gamma: 2 },
        AlgorithmSpec::FirstFit { gamma: 2 },
        AlgorithmSpec::WorstFit { gamma: 2 },
        AlgorithmSpec::NextFit { gamma: 2 },
        AlgorithmSpec::RandomFit { gamma: 2, seed: 3 },
    ] {
        let result = run_sequence(&spec, &sequence).unwrap();
        assert_eq!(result.tenants, 800, "{}", result.algorithm);
        assert!(result.servers >= lower_bound, "{} undercut the volume bound", result.algorithm);
        assert!(result.utilization > 0.0 && result.utilization <= 1.0);
    }
}

#[test]
fn placement_to_cluster_pipeline() {
    // Place a workload, hand it to the DES, and verify the latency of the
    // healthy cluster respects the SLA (every server load ≤ 1 by
    // construction).
    let (consolidator, specs) = cubefit::sim::failure::fill_servers(
        &AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
        &DistributionSpec::Uniform { min: 1, max: 15 },
        10,
        77,
    )
    .unwrap();
    let placement = consolidator.placement();
    assert!(placement.open_bins() <= 10);
    assert!(placement.is_robust());

    let clients: HashMap<TenantId, u32> =
        specs.iter().map(|s| (s.tenant.id(), s.clients)).collect();
    let assignments = assignments_from_placement(placement, &|id| clients[&id]);
    let model = LoadModel::tpch_xeon();
    let mix = QueryMix::tpch_like(&model, 5.0);
    let mut sim =
        ClusterSim::new(placement.created_bins(), assignments, &mix, &model, SimConfig::quick(77));
    let report = sim.run();
    assert!(!report.is_empty());
    assert!(!report.violates_sla(5.0), "healthy cluster p99 {} exceeds SLA", report.p99());
}

#[test]
fn figure5_shape_rfi_fails_two_failures_cubefit3_survives() {
    // The Fig. 5 discriminator at small scale: with two failures, CubeFit
    // γ=3 meets the SLA while RFI (single-failure reserve) violates it.
    let run = |algorithm: AlgorithmSpec| {
        run_failure_experiment(&FailureExperimentConfig {
            algorithm,
            distribution: DistributionSpec::Uniform { min: 1, max: 15 },
            servers: 14,
            failures: 2,
            sla_seconds: 5.0,
            seed: 31,
            sim: SimConfig { warmup_seconds: 4.0, measure_seconds: 20.0, seed: 31 },
        })
        .unwrap()
    };
    let cubefit3 = run(AlgorithmSpec::CubeFit { gamma: 3, classes: 5 });
    assert!(!cubefit3.sla_violated, "cubefit γ=3 p99 {}", cubefit3.p99_seconds);
    assert!(cubefit3.worst_model_load <= 1.0 + 1e-9);

    let rfi = run(AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 });
    assert!(
        rfi.worst_model_load > 1.0,
        "RFI should overload under 2 failures (got {})",
        rfi.worst_model_load
    );
    assert!(rfi.sla_violated, "RFI p99 {}", rfi.p99_seconds);
    assert!(rfi.p99_seconds > cubefit3.p99_seconds);
}

#[test]
fn worst_failure_set_is_worse_than_random_set() {
    let (consolidator, _) = cubefit::sim::failure::fill_servers(
        &AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
        &DistributionSpec::Uniform { min: 1, max: 15 },
        12,
        13,
    )
    .unwrap();
    let p = consolidator.placement();
    let worst = validity::worst_failure_set(p, 2, FailoverSemantics::EvenSplit);
    let worst_load =
        validity::simulate_failures(p, &worst, FailoverSemantics::EvenSplit).max_load();
    let bins: Vec<_> = p.bins().filter(|b| !b.is_empty()).map(|b| b.id()).collect();
    for pair in bins.windows(2).take(10) {
        let load = validity::simulate_failures(p, pair, FailoverSemantics::EvenSplit).max_load();
        assert!(worst_load + 1e-9 >= load);
    }
}

#[test]
fn cost_model_tracks_comparison() {
    let config = ComparisonConfig { tenants: 2_000, runs: 1, base_seed: 21, max_clients: 52 };
    let result = compare(
        &AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
        &AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
        &DistributionSpec::Zipf { exponent: 3.0 },
        &config,
    )
    .unwrap();
    let cost = CostModel::c4_4xlarge();
    let savings = cost.yearly_savings(
        result.baseline_servers.mean.round() as usize,
        result.candidate_servers.mean.round() as usize,
    );
    assert!(savings > 0.0);
    // Sanity: savings equal saved servers × hourly × hours.
    let saved = result.baseline_servers.mean.round() - result.candidate_servers.mean.round();
    assert!((savings - saved * 0.822 * 8760.0).abs() < 1.0);
}

#[test]
fn analysis_bounds_cover_observed_ratio() {
    // The empirical servers/LB ratio of CubeFit stays under the analytic
    // Theorem-2 bound once instances are large (here: generously under
    // 2× the bound to allow LB slack).
    use cubefit::analysis::{empirical_ratio, maximize_bin_weight, IpConfig};
    let config = ComparisonConfig { tenants: 3_000, runs: 1, base_seed: 2, max_clients: 52 };
    let sequence = sequence_for(&DistributionSpec::Uniform { min: 1, max: 15 }, &config, 0);
    let mut cf = cubefit::core::CubeFit::new(
        cubefit::core::CubeFitConfig::builder().replication(2).classes(10).build().unwrap(),
    );
    let tenants: Vec<_> = sequence.tenants().collect();
    let observed = empirical_ratio(&mut cf, &tenants).unwrap();
    let analytic = maximize_bin_weight(&IpConfig::new(2, 10)).objective;
    assert!(
        observed.ratio < 2.0 * analytic,
        "observed {} vs analytic {}",
        observed.ratio,
        analytic
    );
}
