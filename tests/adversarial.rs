//! Adversarial and boundary-condition integration tests: sequences crafted
//! to stress class boundaries, cube-generation rollovers, multi-replica
//! sealing, and the m-fit reserve logic.

use cubefit::baselines::{offline, BestFit, NextFit, Rfi};
use cubefit::core::validity::{self, FailoverSemantics};
use cubefit::core::{
    Consolidator, CubeFit, CubeFitConfig, Load, Stage1Eligibility, Tenant, TenantId, TinyPolicy,
};

fn tenant(id: u64, load: f64) -> Tenant {
    Tenant::new(TenantId::new(id), Load::new(load).unwrap())
}

fn cubefit(gamma: usize, classes: usize) -> CubeFit {
    CubeFit::new(CubeFitConfig::builder().replication(gamma).classes(classes).build().unwrap())
}

/// Loads sitting exactly on every class boundary (`replica = 1/m`).
#[test]
fn exact_class_boundary_loads() {
    for gamma in [2usize, 3] {
        let mut cf = cubefit(gamma, 10);
        let mut id = 0;
        // replica sizes 1/γ, 1/(γ+1), …, 1/(γ+12) — tenant load = γ·s.
        for m in gamma..gamma + 13 {
            for _ in 0..4 {
                let load = gamma as f64 / m as f64;
                cf.place(tenant(id, load.min(1.0))).unwrap();
                id += 1;
            }
        }
        let report = validity::check(cf.placement());
        assert!(report.is_robust(), "γ={gamma}: margin {}", report.worst_margin);
    }
}

/// A flood of identical tenants crossing many cube generations.
#[test]
fn generation_rollover_flood() {
    // Class 2 (γ=2): τ^γ = 4 tenants per generation; 250 tenants cross
    // 60+ generations.
    let mut cf = cubefit(2, 10);
    for id in 0..250 {
        cf.place(tenant(id, 0.6)).unwrap();
    }
    let p = cf.placement();
    assert!(p.is_robust());
    // Each full bin holds 2 payload replicas of 0.3: level 0.6; at most a
    // constant number of trailing bins are underfull.
    let underfull = p.bins().filter(|b| !b.is_empty() && b.level() < 0.6 - 1e-9).count();
    assert!(underfull <= 4, "{underfull} underfull bins");
}

/// Alternating huge and tiny tenants exercise stage-1 + multi paths
/// simultaneously.
#[test]
fn alternating_extremes() {
    let mut cf = cubefit(2, 10);
    for id in 0..300 {
        let load = if id % 2 == 0 { 1.0 } else { 0.004 };
        cf.place(tenant(id, load)).unwrap();
    }
    assert!(cf.placement().is_robust());
    let stats = cf.stats();
    assert!(stats.tiny_placements >= 150 - 1);
}

/// Descending then ascending staircase of loads.
#[test]
fn staircase_sequences() {
    for direction in [false, true] {
        let mut cf = cubefit(3, 7);
        let mut loads: Vec<f64> = (1..=200).map(|i| i as f64 / 200.0).collect();
        if direction {
            loads.reverse();
        }
        for (id, load) in loads.into_iter().enumerate() {
            cf.place(tenant(id as u64, load)).unwrap();
        }
        assert!(cf.placement().is_robust(), "direction {direction}");
    }
}

/// Tiny tenants only — the multi-replica machinery alone must stay robust
/// across hundreds of seals, under both policies.
#[test]
fn tiny_only_floods() {
    for (policy, classes) in [(TinyPolicy::ClassKMinus1, 10), (TinyPolicy::Theoretical, 12)] {
        let config = CubeFitConfig::builder()
            .replication(2)
            .classes(classes)
            .tiny_policy(policy)
            .build()
            .unwrap();
        let mut cf = CubeFit::new(config);
        for id in 0..1000 {
            // Sizes sweep the tiny range, including near the threshold.
            let load = 0.001 + 0.0015 * (id % 100) as f64;
            cf.place(tenant(id, load)).unwrap();
        }
        let report = validity::check(cf.placement());
        assert!(report.is_robust(), "{policy:?}: margin {}", report.worst_margin);
        assert!(cf.stats().sealed_multis > 10);
    }
}

/// Worst-case failure sets never overload CubeFit, for every failure count
/// up to γ−1 — and the bound is *tight* (some server is pushed close to
/// capacity), showing the reserve is not wastefully conservative.
#[test]
fn failure_sweep_up_to_gamma_minus_one() {
    let mut cf = cubefit(3, 5);
    let mut state = 77u64;
    for id in 0..300 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let load = (((state >> 11) as f64 / (1u64 << 53) as f64) * 0.999).max(1e-6);
        cf.place(tenant(id, load)).unwrap();
    }
    for f in 1..=2usize {
        let worst = validity::worst_failure_set(cf.placement(), f, FailoverSemantics::Conservative);
        assert_eq!(worst.len(), f);
        let impact =
            validity::simulate_failures(cf.placement(), &worst, FailoverSemantics::Conservative);
        assert!(!impact.has_overload(), "{f} failures overload");
        assert!(
            impact.max_load() > 0.7,
            "{f} failures: worst load {} suspiciously low",
            impact.max_load()
        );
    }
}

/// The same adversarial stream hits every algorithm; all placements honour
/// their robustness contracts and respect the volume lower bound.
#[test]
fn cross_algorithm_adversarial_stream() {
    // Sawtooth with boundary spikes.
    let loads: Vec<f64> = (0..400)
        .map(|i| match i % 5 {
            0 => 1.0,
            1 => 0.5,
            2 => 1.0 / 3.0,
            3 => 0.05,
            _ => 0.66,
        })
        .collect();
    let total: f64 = loads.iter().sum();

    let mut algorithms: Vec<Box<dyn Consolidator>> = vec![
        Box::new(cubefit(2, 10)),
        Box::new(Rfi::new(2, 0.85).unwrap()),
        Box::new(BestFit::new(2).unwrap()),
        Box::new(NextFit::new(2).unwrap()),
    ];
    for algorithm in &mut algorithms {
        for (id, &load) in loads.iter().enumerate() {
            algorithm.place(tenant(id as u64, load)).unwrap();
        }
        assert!(algorithm.placement().is_robust(), "{} not robust", algorithm.name());
        assert!(algorithm.placement().open_bins() as f64 >= total);
    }
}

/// Offline BFD sandwiches every online algorithm from below on generic
/// input: online/offline ratios stay within the Theorem-2 ballpark.
#[test]
fn online_vs_offline_sandwich() {
    let mut state = 4242u64;
    let loads: Vec<f64> = (0..600)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((((state >> 11) as f64) / (1u64 << 53) as f64) * 0.4).max(1e-6)
        })
        .collect();
    let ts: Vec<Tenant> = loads.iter().enumerate().map(|(i, &l)| tenant(i as u64, l)).collect();

    let offline_servers = offline::best_fit_decreasing(&ts, 2).unwrap().open_bins();
    let mut cf = cubefit(2, 10);
    for t in &ts {
        cf.place(*t).unwrap();
    }
    let online_servers = cf.placement().open_bins();
    let ratio = online_servers as f64 / offline_servers as f64;
    assert!(ratio < 1.7, "online {online_servers} vs offline {offline_servers} (ratio {ratio:.3})");
}

/// Stage-1 eligibility ablation preserves robustness and the AnyMatureBin
/// variant never uses more servers on a small-tenant stream.
#[test]
fn stage1_eligibility_variants_robust() {
    let mut loads = Vec::new();
    let mut state = 9u64;
    for _ in 0..400 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        loads.push((((state >> 11) as f64 / (1u64 << 53) as f64) * 0.3).max(1e-6));
    }
    let mut servers = Vec::new();
    for rule in [Stage1Eligibility::SmallerClassBins, Stage1Eligibility::AnyMatureBin] {
        let config = CubeFitConfig::builder()
            .replication(2)
            .classes(10)
            .stage1_eligibility(rule)
            .build()
            .unwrap();
        let mut cf = CubeFit::new(config);
        for (id, &load) in loads.iter().enumerate() {
            cf.place(tenant(id as u64, load)).unwrap();
        }
        assert!(cf.placement().is_robust(), "{rule:?}");
        servers.push(cf.placement().open_bins());
    }
    // Both are valid; neither should be wildly worse than the other.
    let (a, b) = (servers[0] as f64, servers[1] as f64);
    assert!((a / b).max(b / a) < 1.5, "smaller-class {a} vs any {b}");
}

/// Duplicate-id and near-zero loads are rejected/handled without breaking
/// invariants mid-stream.
#[test]
fn error_paths_leave_state_intact() {
    let mut cf = cubefit(2, 5);
    cf.place(tenant(1, 0.5)).unwrap();
    assert!(cf.place(tenant(1, 0.5)).is_err());
    assert!(Load::new(0.0).is_err());
    assert!(Load::new(-1.0).is_err());
    cf.place(tenant(2, f64::MIN_POSITIVE.max(1e-300))).unwrap();
    assert!(cf.placement().is_robust());
    assert_eq!(cf.placement().tenant_count(), 2);
}

/// Large stress: 20,000 mixed tenants at γ=2 and γ=3 stay robust and the
/// placement stats reconcile.
#[test]
fn large_mixed_stress() {
    for gamma in [2usize, 3] {
        let mut cf = cubefit(gamma, 10);
        let mut state = 31u64 + gamma as u64;
        let mut total = 0.0;
        for id in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 11) as f64) / (1u64 << 53) as f64;
            // Mixture: 70% small, 25% medium, 5% large.
            let load = if u < 0.7 {
                0.001 + u * 0.1
            } else if u < 0.95 {
                0.1 + (u - 0.7) * 1.6
            } else {
                (0.6 + (u - 0.95) * 8.0).min(1.0)
            };
            cf.place(tenant(id, load)).unwrap();
            total += load;
        }
        let stats = cf.placement().stats();
        assert!((stats.total_load - total).abs() < 1e-6);
        assert_eq!(stats.tenants, 20_000);
        let report = validity::check(cf.placement());
        assert!(report.is_robust(), "γ={gamma}: margin {}", report.worst_margin);
    }
}
