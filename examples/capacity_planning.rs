//! Capacity planning for a SaaS analytics provider: how many servers does a
//! 20,000-tenant fleet need under each consolidation algorithm, and what
//! does the choice cost per year?
//!
//! This is the workload the paper's introduction motivates: a cloud
//! provider hosting in-memory analytics tenants with replication, sizing
//! its fleet while guaranteeing the SLA under server failures.
//!
//! Run: `cargo run --release --example capacity_planning`

use cubefit::sim::experiment::sequence_for;
use cubefit::sim::report::{dollars, TextTable};
use cubefit::sim::runner::run_sequence;
use cubefit::sim::{AlgorithmSpec, ComparisonConfig, CostModel, DistributionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ComparisonConfig { tenants: 20_000, runs: 1, base_seed: 2024, max_clients: 52 };
    // Mostly small analytics tenants with a long tail of heavy ones.
    let distribution = DistributionSpec::Zipf { exponent: 2.0 };
    let sequence = sequence_for(&distribution, &config, 0);
    println!(
        "fleet: {} tenants, {} distribution, total load {:.0} server-equivalents\n",
        sequence.len(),
        distribution.label(),
        sequence.total_load()
    );

    let algorithms = [
        AlgorithmSpec::CubeFit { gamma: 2, classes: 10 },
        AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
        AlgorithmSpec::BestFit { gamma: 2 },
        AlgorithmSpec::NextFit { gamma: 2 },
        AlgorithmSpec::RandomFit { gamma: 2, seed: 7 },
    ];

    let cost = CostModel::c4_4xlarge();
    let mut table = TextTable::new(vec![
        "algorithm",
        "servers",
        "utilization",
        "yearly cost",
        "robust",
        "placement time",
    ]);
    let mut best: Option<(String, usize)> = None;
    let mut worst_servers = 0usize;
    for spec in &algorithms {
        let result = run_sequence(spec, &sequence)?;
        if best.as_ref().is_none_or(|(_, s)| result.servers < *s) {
            best = Some((result.algorithm.clone(), result.servers));
        }
        worst_servers = worst_servers.max(result.servers);
        table.row(vec![
            result.algorithm.clone(),
            result.servers.to_string(),
            format!("{:.1}%", result.utilization * 100.0),
            dollars(cost.yearly_cost(result.servers)),
            result.robust.to_string(),
            format!("{:.0?}", result.wall),
        ]);
    }
    println!("{}", table.render());

    let (name, servers) = best.expect("at least one algorithm ran");
    println!(
        "{name} wins with {servers} servers — {} per year cheaper than the worst choice",
        dollars(cost.yearly_savings(worst_servers, servers))
    );
    Ok(())
}
