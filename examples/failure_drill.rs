//! Failure drill: fill a small cluster, knock out the worst-case pair of
//! servers, and watch the 99th-percentile latency — the paper's Fig. 5
//! experiment at laptop scale.
//!
//! Demonstrates why replication factor matters: γ=2 protects against one
//! failure, γ=3 against two.
//!
//! Run: `cargo run --release --example failure_drill`

use cubefit::cluster::SimConfig;
use cubefit::sim::report::TextTable;
use cubefit::sim::{
    run_failure_experiment, AlgorithmSpec, DistributionSpec, FailureExperimentConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let servers = 16;
    println!("failure drill on a {servers}-server cluster, TPC-H-like load, 5 s p99 SLA\n");

    let mut table = TextTable::new(vec![
        "algorithm",
        "failures",
        "tenants",
        "p99 (s)",
        "SLA guarantee",
        "unavailable clients",
    ]);
    for failures in [1usize, 2] {
        for algorithm in [
            AlgorithmSpec::CubeFit { gamma: 2, classes: 5 },
            AlgorithmSpec::CubeFit { gamma: 3, classes: 5 },
            AlgorithmSpec::Rfi { gamma: 2, mu: 0.85 },
        ] {
            let outcome = run_failure_experiment(&FailureExperimentConfig {
                algorithm,
                distribution: DistributionSpec::Uniform { min: 1, max: 15 },
                servers,
                failures,
                sla_seconds: 5.0,
                seed: 99,
                sim: SimConfig { warmup_seconds: 5.0, measure_seconds: 30.0, seed: 99 },
            })?;
            table.row(vec![
                outcome.algorithm.clone(),
                failures.to_string(),
                outcome.tenants.to_string(),
                format!("{:.2}", outcome.p99_seconds),
                if outcome.sla_violated { "VIOLATED" } else { "holds" }.to_string(),
                outcome.unavailable_clients.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("γ=3 CubeFit should be the only configuration meeting the SLA at 2 failures.");
    Ok(())
}
