//! Record/replay: capture a tenant workload to a binary trace, ship it
//! around, and replay it bit-for-bit — the reproducibility workflow behind
//! every experiment in this repository.
//!
//! Run: `cargo run --example trace_replay`

use cubefit::core::{Consolidator, CubeFit, CubeFitConfig};
use cubefit::workload::{trace, LoadModel, SequenceBuilder, ZipfClients};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a seeded workload: zipf(3) clients, the paper's testbed
    //    load model.
    let original = SequenceBuilder::new(ZipfClients::new(3.0, 52), LoadModel::tpch_xeon())
        .count(1_000)
        .seed(7)
        .build();

    // 2. Record it to the compact binary trace format.
    let bytes = trace::encode(&original);
    println!(
        "encoded {} tenants into {} bytes ({:.1} bytes/tenant)",
        original.len(),
        bytes.len(),
        bytes.len() as f64 / original.len() as f64
    );

    // 3. Replay elsewhere: decode and verify it is identical.
    let replayed = trace::decode(bytes)?;
    assert_eq!(replayed, original);

    // 4. Placements over the replayed trace match placements over the
    //    original exactly.
    let place = |seq: &cubefit::workload::TenantSequence| -> Result<usize, cubefit::core::Error> {
        let mut algorithm = CubeFit::new(CubeFitConfig::default());
        for tenant in seq.tenants() {
            algorithm.place(tenant)?;
        }
        Ok(algorithm.placement().open_bins())
    };
    let a = place(&original)?;
    let b = place(&replayed)?;
    assert_eq!(a, b);
    println!("replayed placement identical: {a} servers both times");

    // 5. Corrupted traces are rejected, not silently mis-read.
    let mut corrupted = trace::encode(&original).to_vec();
    corrupted[0] = b'X';
    assert!(trace::decode(&corrupted[..]).is_err());
    println!("corrupted trace correctly rejected");
    Ok(())
}
