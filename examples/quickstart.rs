//! Quickstart: consolidate a handful of tenants with CubeFit, verify the
//! placement survives failures, and inspect what a worst-case failure does.
//!
//! Run: `cargo run --example quickstart`

use cubefit::core::validity::{self, FailoverSemantics};
use cubefit::core::{Consolidator, CubeFit, CubeFitConfig, Load, Tenant, TenantId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two replicas per tenant (tolerates one server failure), five size
    // classes — the paper's small-deployment configuration.
    let config = CubeFitConfig::builder().replication(2).classes(5).build()?;
    let mut cubefit = CubeFit::new(config);

    // The paper's running example sequence (Fig. 1):
    // σ = ⟨a=0.6, b=0.3, c=0.6, d=0.78, e=0.12, f=0.36⟩.
    let loads = [0.6, 0.3, 0.6, 0.78, 0.12, 0.36];
    for (id, &load) in loads.iter().enumerate() {
        let tenant = Tenant::new(TenantId::new(id as u64), Load::new(load)?);
        let outcome = cubefit.place(tenant)?;
        println!(
            "placed {tenant} via {:?} on {:?}",
            outcome.stage,
            outcome.bins.iter().map(|b| b.index()).collect::<Vec<_>>()
        );
    }

    let placement = cubefit.placement();
    let stats = placement.stats();
    println!(
        "\n{} tenants on {} servers (mean utilization {:.1}%)",
        stats.tenants,
        stats.open_bins,
        stats.mean_utilization * 100.0
    );

    // Theorem 1 in action: no single failure can overload any server.
    assert!(placement.is_robust());
    println!("placement is robust against any single server failure");

    // What does the worst possible failure do?
    let worst = validity::worst_failure_set(placement, 1, FailoverSemantics::EvenSplit);
    let impact = validity::simulate_failures(placement, &worst, FailoverSemantics::EvenSplit);
    println!(
        "worst failure ({:?}) pushes the hottest survivor to load {:.3} — still ≤ 1",
        worst.iter().map(|b| b.index()).collect::<Vec<_>>(),
        impact.max_load()
    );
    assert!(!impact.has_overload());
    Ok(())
}
