//! Offline shim for the `serde_json` crate.
//!
//! Pairs with the `serde` shim's [`Value`] model: serialization renders a
//! [`Value`] tree to JSON text, deserialization parses JSON text into a
//! [`Value`] and decodes it with [`serde::Deserialize`]. Covers the API
//! surface this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], the [`json!`] macro, and the re-exported
//! [`Value`]/[`Map`]/[`Number`] types.
//!
//! Output conventions match the real crate: compact form has no spaces
//! after `:` or `,`; floats print in shortest-roundtrip form (Rust's
//! `{:?}`), non-finite floats serialize as `null`, and pretty form indents
//! by two spaces.

pub use serde::{DeError, Map, Number, Value};

/// Error for serialization or parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in the shim; the `Result` keeps call sites source
/// compatible with the real crate.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Decodes a [`Value`] tree into a concrete type.
///
/// # Errors
///
/// When the tree does not fit the target type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        // `{:?}` is Rust's shortest-roundtrip float form and keeps a
        // trailing `.0` on whole numbers, matching serde_json.
        Number::Float(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Never fails in the shim (kept for source compatibility).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to two-space-indented JSON text.
///
/// # Errors
///
/// Never fails in the shim (kept for source compatibility).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl std::fmt::Display) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// On malformed JSON or when the document does not fit `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Shim-internal helper backing the [`json!`] macro.
#[doc(hidden)]
pub fn __value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a literal, an array of expressions, or a flat
/// object with string-literal keys — the forms this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $item:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__value(&$item) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert(::std::string::String::from($key), $crate::__value(&$val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::__value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_matches_serde_json_conventions() {
        let v = json!({
            "name": "cube\"fit",
            "servers": 12u32,
            "utilization": 0.5f64,
            "whole": 2.0f64,
            "robust": true,
            "missing": Option::<u32>::None,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"cube\"fit","servers":12,"utilization":0.5,"whole":2.0,"robust":true,"missing":null}"#
        );
    }

    #[test]
    fn pretty_output_indents_by_two() {
        let v = json!({"a": 1u32});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parses_nested_documents() {
        let v: Value =
            from_str(r#" {"a": [1, -2, 3.5, "x\n", {"b": null}], "c": false} "#).unwrap();
        let Value::Object(map) = &v else { panic!("expected object") };
        let Some(Value::Array(items)) = map.get("a") else { panic!("expected array") };
        assert_eq!(items[0], Value::Number(Number::PosInt(1)));
        assert_eq!(items[1], Value::Number(Number::NegInt(-2)));
        assert_eq!(items[2], Value::Number(Number::Float(3.5)));
        assert_eq!(items[3], Value::String("x\n".into()));
        assert_eq!(map.get("c"), Some(&Value::Bool(false)));
    }

    #[test]
    fn value_roundtrips_through_text() {
        let v = json!({
            "loads": vec![0.1f64, 0.25, 1.0],
            "label": "γ=2 μ=0.85",
            "count": 52u64,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        // Escaped surrogate pair for 😀 plus raw multi-byte UTF-8.
        let s: String = from_str("\"A\\ud83d\\ude00é\"").unwrap();
        assert_eq!(s, "A\u{1F600}é");
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
    }
}
