//! Offline shim for the `ctrlc` crate.
//!
//! Implements the one entry point the workspace uses:
//! [`set_handler`], which registers a closure to run when the process
//! receives `SIGINT` (Ctrl-C) or `SIGTERM`.
//!
//! Differences from the real crate, deliberate for offline use:
//!
//! - the handler is installed with `signal(2)` rather than a dedicated
//!   thread + self-pipe, so the closure runs in signal-handler context.
//!   Callers must keep it async-signal-safe — in this workspace it only
//!   ever stores into an `AtomicBool`;
//! - only Unix is supported (the build environment is Linux).

use std::sync::OnceLock;

/// Errors from [`set_handler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A handler is already registered (the shim supports exactly one).
    MultipleHandlers,
    /// The OS rejected the signal registration.
    System(i32),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::MultipleHandlers => write!(f, "a Ctrl-C handler is already registered"),
            Error::System(signal) => write!(f, "failed to register handler for signal {signal}"),
        }
    }
}

impl std::error::Error for Error {}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;
const SIG_ERR: usize = usize::MAX;

static HANDLER: OnceLock<Box<dyn Fn() + Send + Sync>> = OnceLock::new();

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

extern "C" fn trampoline(_signum: i32) {
    if let Some(handler) = HANDLER.get() {
        handler();
    }
}

/// Registers `handler` to run on `SIGINT` and `SIGTERM`.
///
/// The closure executes in signal-handler context: it must be
/// async-signal-safe (store a flag; do not allocate, lock, or do I/O).
///
/// # Errors
///
/// [`Error::MultipleHandlers`] when a handler is already registered,
/// [`Error::System`] when the OS rejects the registration.
pub fn set_handler<F>(handler: F) -> Result<(), Error>
where
    F: Fn() + Send + Sync + 'static,
{
    HANDLER.set(Box::new(handler)).map_err(|_| Error::MultipleHandlers)?;
    for signum in [SIGINT, SIGTERM] {
        // SAFETY: `trampoline` is an `extern "C"` fn with the signature
        // `signal(2)` expects, and it only reads an initialized
        // `OnceLock` — no allocation or locking in handler context.
        let entry = trampoline as extern "C" fn(i32) as *const () as usize;
        if unsafe { signal(signum, entry) } == SIG_ERR {
            return Err(Error::System(signum));
        }
    }
    Ok(())
}

/// Test-only helper: sends `SIGINT` to the current process so tests can
/// exercise a registered handler without an external `kill`.
pub fn raise_sigint() {
    // SAFETY: `raise` delivers a signal to this process; with the
    // trampoline installed it only runs the registered handler.
    unsafe {
        raise(SIGINT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn handler_runs_on_sigint_and_second_registration_errors() {
        let hits = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&hits);
        set_handler(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })
        .expect("first registration succeeds");

        raise_sigint();
        assert_eq!(hits.load(Ordering::SeqCst), 1, "handler must run on SIGINT");
        raise_sigint();
        assert_eq!(hits.load(Ordering::SeqCst), 2, "handler stays installed");

        assert_eq!(set_handler(|| {}), Err(Error::MultipleHandlers));
        assert!(!Error::MultipleHandlers.to_string().is_empty());
        assert!(Error::System(SIGINT).to_string().contains('2'));
    }
}
