//! Offline shim for the `rand_chacha` crate.
//!
//! Implements [`ChaCha8Rng`]: the standard ChaCha block function with 8
//! rounds (64-bit counter, zero nonce/stream), keyed from a 32-byte seed.
//! Word order and the `u64` composition follow `rand_chacha` 0.3:
//! `next_u32` consumes successive little-endian keystream words,
//! `next_u64` consumes two (low word first).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A cryptographically strong, cheap-to-seed deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k" — the ChaCha constant words.
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index == 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let raw = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_block_matches_known_structure() {
        // With an all-zero key the first block must differ from the second
        // (counter increments) and both must be non-degenerate.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        assert!(first.iter().any(|&w| w != 0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut bytes = [0u8; 13];
        rng.fill_bytes(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 100_000;
        let mean = (0..n).map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
