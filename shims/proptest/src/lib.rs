//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait over numeric ranges, [`Just`], tuples,
//! `prop::collection::vec`, [`any`], `prop_oneof!`, and the [`proptest!`]
//! macro with `#![proptest_config(...)]` support.
//!
//! Differences from the real crate, deliberate for offline use:
//!
//! - no shrinking — a failing case reports its inputs and panics as-is;
//! - deterministic seeding per test function (stable across runs), rather
//!   than OS entropy with a persisted failure file.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded stably from a test's name, so each test explores its
    /// own sequence but runs reproduce exactly.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range in strategy");
        // Rejection sampling for unbiased results.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = end.wrapping_sub(start) as u64 + 1;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // Occasionally pin the endpoints so boundaries get exercised even
        // though a pure uniform draw almost never lands exactly on them.
        match rng.below(64) {
            0 => start,
            1 => end,
            _ => start + rng.unit_f64() * (end - start),
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over `options`; must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].new_value(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property. As with upstream
    /// proptest, a `PROPTEST_CASES` environment variable overrides the
    /// in-code count (CI nightlies raise it for deeper sweeps).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: env_cases().unwrap_or(cases) }
    }
}

/// The `PROPTEST_CASES` override, if set and parseable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: env_cases().unwrap_or(64) }
    }
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// A uniform choice between the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($option)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)*
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(panic) = outcome {
                    ::std::eprintln!(
                        "proptest: {} failed on case {} with inputs:",
                        stringify!($name),
                        case,
                    );
                    $(::std::eprintln!(
                        "  {} = {:?}", stringify!($arg), $arg,
                    );)*
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest! { @funcs ($config) $($rest)* }
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @funcs ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @funcs ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// Namespace mirror so call sites can write `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3usize..10).new_value(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.25f64..=0.75).new_value(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_f64_hits_endpoints() {
        let mut rng = TestRng::deterministic("endpoints");
        let strat = 0.0f64..=1.0;
        let mut lo = false;
        let mut hi = false;
        for _ in 0..2000 {
            let v = strat.new_value(&mut rng);
            lo |= v == 0.0;
            hi |= v == 1.0;
        }
        assert!(lo && hi, "endpoint pinning should fire");
    }

    #[test]
    fn vec_strategy_sizes_in_range() {
        let mut rng = TestRng::deterministic("sizes");
        let strat = crate::collection::vec(0u32..5, 2..6);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_unions_strategies() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = prop_oneof![Just(1u32), Just(2u32), 10u32..12];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(strat.new_value(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: arguments bind, asserts run.
        #[test]
        fn macro_generates_runnable_tests(
            x in 1u64..100,
            pair in (0.0f64..1.0, any::<u8>()),
            items in prop::collection::vec(0usize..4, 0..8),
        ) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(pair.0 < 1.0);
            prop_assert_eq!(items.len() < 8, true);
        }
    }
}
