//! Offline shim for the `criterion` crate.
//!
//! A minimal timing harness exposing the API the workspace's benches use:
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with throughput/sample-size settings,
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Instead of criterion's statistical analysis, each benchmark is warmed
//! up briefly, then timed over enough iterations to fill a fixed
//! measurement window; the mean per-iteration time (and derived
//! throughput, when declared) is printed in criterion-like one-line form.
//! `CRITERION_QUICK=1` shrinks the windows for smoke runs.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id printed as `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under test; drives timed iterations.
pub struct Bencher {
    /// Total time spent in the measured closure.
    elapsed: Duration,
    /// Number of measured iterations.
    iterations: u64,
    /// Measurement window to fill.
    measurement_time: Duration,
    /// Warm-up window.
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_until {
            std_black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            std_black_box(routine());
            iterations += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time {
                self.elapsed = elapsed;
                self.iterations = iterations;
                return;
            }
        }
    }
}

fn format_time(per_iter: Duration) -> String {
    let nanos = per_iter.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

/// The benchmark manager handed to each `criterion_group!` function.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        Criterion {
            measurement_time: if quick {
                Duration::from_millis(100)
            } else {
                Duration::from_millis(1500)
            },
            warm_up_time: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(300)
            },
            throughput: None,
        }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        self.report(&name.to_string(), &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    fn report(&self, name: &str, bencher: &Bencher) {
        if bencher.iterations == 0 {
            println!("{name:<40} no iterations measured");
            return;
        }
        let per_iter = bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(u32::MAX);
        let mut line = format!(
            "{name:<40} time: [{}]  ({} iterations)",
            format_time(per_iter),
            bencher.iterations
        );
        if let Some(throughput) = self.throughput {
            let per_second = match throughput {
                Throughput::Elements(n) | Throughput::Bytes(n) => {
                    n as f64 * bencher.iterations as f64 / bencher.elapsed.as_secs_f64()
                }
            };
            let unit = match throughput {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            line.push_str(&format!("  thrpt: {per_second:.0} {unit}"));
        }
        println!("{line}");
    }
}

/// A group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.criterion.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the shim's fixed measurement window does
    /// not use a sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Shrinks or grows the measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measurement_time = window;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(full, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group, clearing its settings.
    pub fn finish(self) {
        self.criterion.throughput = None;
    }
}

/// Bundles benchmark functions into a runner the shim's
/// `criterion_main!` invokes.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut criterion = Criterion::default();
        criterion.measurement_time = Duration::from_millis(5);
        criterion.warm_up_time = Duration::from_millis(1);
        let mut ran = 0u64;
        criterion.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            });
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_applies_throughput_and_finishes() {
        let mut criterion = Criterion::default();
        criterion.measurement_time = Duration::from_millis(5);
        criterion.warm_up_time = Duration::from_millis(1);
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", "p"), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(criterion.throughput.is_none());
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("cubefit", "uniform").to_string(), "cubefit/uniform");
    }
}
