//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Implements the traits and extension methods this workspace calls:
//! [`RngCore`], [`SeedableRng`] (including the PCG32-based
//! `seed_from_u64` default that matches `rand_core` 0.6 bit-for-bit), and
//! the [`Rng`] extension trait with `gen`, `gen_bool`, and `gen_range` for
//! the types used here.

/// The core trait every random number generator implements.
///
/// Object-safe, so generators can be driven through `&mut dyn RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible [`Self::fill_bytes`]; the shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Error type for fallible generation (never produced by the shim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via the same PCG32 stream
    /// `rand_core` 0.6 uses, so seeded sequences match the real crates.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    /// Types `Rng::gen` can produce in this shim.
    pub trait Standard {
        fn from_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn from_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random bits mapped to [0, 1) — the rand 0.8 Standard
            // distribution for f64.
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Standard for f32 {
        fn from_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }

    impl Standard for u32 {
        fn from_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for u64 {
        fn from_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for bool {
        fn from_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    /// Ranges `Rng::gen_range` accepts in this shim.
    pub trait SampleRange<T> {
        fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end - self.start) as u64;
                    // Unbiased via rejection of the wrap-around zone.
                    let zone = u64::MAX - u64::MAX % span;
                    loop {
                        let raw = rng.next_u64();
                        if raw < zone {
                            return self.start + (raw % span) as $t;
                        }
                    }
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range in gen_range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (end - start) as u64 + 1;
                    let zone = u64::MAX - u64::MAX % span;
                    loop {
                        let raw = rng.next_u64();
                        if raw < zone {
                            return start + (raw % span) as $t;
                        }
                    }
                }
            }
        )*};
    }

    int_range!(usize, u64, u32, u16, u8);

    impl SampleRange<f64> for std::ops::Range<f64> {
        fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range in gen_range");
            let unit = <f64 as Standard>::from_rng(rng);
            self.start + unit * (self.end - self.start)
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers full-range, fair `bool`).
    fn gen<T: sealed::Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Range: sealed::SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as sealed::Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::rngs` namespace.
pub mod rngs {
    /// A non-deterministic convenience generator (see [`crate::thread_rng`]).
    ///
    /// SplitMix64 over a per-instance seed; not cryptographic, which
    /// matches how the workspace uses `thread_rng` (smoke tests only).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        state: u64,
    }

    impl ThreadRng {
        pub(crate) fn new(state: u64) -> Self {
            ThreadRng { state }
        }
    }

    impl crate::RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let raw = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&raw[..chunk.len()]);
            }
        }
    }
}

/// A freshly seeded convenience generator (distinct per call).
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let tick = std::time::SystemTime::UNIX_EPOCH
        .elapsed()
        .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
    rngs::ThreadRng::new(tick ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64: decent diffusion for the statistical checks below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let raw = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&raw[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = Counter(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = Counter(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            match rng.gen_range(0u32..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = Counter(4);
        let dynref: &mut dyn RngCore = &mut rng;
        assert!(dynref.next_u64() != dynref.next_u64());
        let mut bytes = [0u8; 5];
        dynref.fill_bytes(&mut bytes);
        dynref.try_fill_bytes(&mut bytes).unwrap();
    }
}
