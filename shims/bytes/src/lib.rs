//! Offline shim for the `bytes` crate.
//!
//! Implements exactly the subset of the `bytes` 1.x API this workspace
//! uses: [`BytesMut`] as a growable little-endian writer, [`Bytes`] as a
//! cheap frozen buffer, and the [`Buf`]/[`BufMut`] traits for sequential
//! reads and writes. Semantics match the real crate for these calls.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Read cursor for the [`Buf`] implementation.
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), pos: 0 }
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data), pos: 0 }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into(), pos: 0 }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-picture reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut written = 0;
        while written < dst.len() {
            let chunk = self.chunk();
            let take = chunk.len().min(dst.len() - written);
            dst[written..written + take].copy_from_slice(&chunk[..take]);
            written += take;
            self.advance(take);
        }
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, value: f64) {
        self.put_u64_le(value.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"CFT1");
        buf.put_u32_le(7);
        buf.put_u64_le(0xDEAD_BEEF_0123_4567);
        buf.put_f64_le(0.625);
        let bytes = buf.freeze();
        let mut reader = &bytes[..];
        let mut magic = [0u8; 4];
        reader.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"CFT1");
        assert_eq!(reader.get_u32_le(), 7);
        assert_eq!(reader.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(reader.get_f64_le(), 0.625);
        assert!(!reader.has_remaining());
    }

    #[test]
    fn bytes_implements_buf() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u32_le(2);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 8);
        assert_eq!(bytes.get_u32_le(), 1);
        assert_eq!(bytes.remaining(), 4);
        assert_eq!(bytes.get_u32_le(), 2);
        assert!(bytes.is_empty());
    }
}
