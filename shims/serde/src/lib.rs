//! Offline shim for the `serde` crate.
//!
//! The real serde decouples data structures from formats through the
//! `Serializer`/`Deserializer` visitor machinery. This workspace only ever
//! serializes to and from JSON, so the shim collapses the model to one hop
//! through an in-memory [`Value`] tree:
//!
//! - [`Serialize`] renders a type to a [`Value`];
//! - [`Deserialize`] rebuilds a type from a [`Value`];
//! - the `serde_json` shim converts [`Value`] to and from JSON text.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`, re-exported from
//! the `serde_derive` shim) generate impls of these traits with the same
//! externally-tagged data layout the real serde uses, so JSON produced
//! before the shim remains readable and vice versa.

pub use serde_derive::{Deserialize, Serialize};

/// An ordered JSON object.
///
/// Preserves insertion order (like serde_json's `preserve_order` feature)
/// so dumps and reports are stable and diffable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was already present (matching `serde_json::Map::insert`).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number (always finite; non-finite floats serialize
    /// as `null`, matching serde_json).
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossless for floats, best-effort for ints).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as an `i64`, if it fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )*};
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                if n < 0 {
                    Value::Number(Number::NegInt(n as i64))
                } else {
                    Value::Number(Number::PosInt(n as u64))
                }
            }
        }
    )*};
}

value_from_uint!(u8, u16, u32, u64, usize);
value_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        if f.is_finite() {
            Value::Number(Number::Float(f))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::from(f64::from(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Value {
        Value::Object(map)
    }
}

/// Error produced when a [`Value`] cannot be decoded into a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with an arbitrary message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// Prefixes the error with the field or variant being decoded.
    #[must_use]
    pub fn context(self, site: &str) -> Self {
        DeError { message: format!("{site}: {}", self.message) }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// A type renderable as a JSON [`Value`].
pub trait Serialize {
    /// Renders `self`.
    fn to_value(&self) -> Value;
}

/// A type rebuildable from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value, or explains why the document does not fit.
    ///
    /// # Errors
    ///
    /// When `value` has the wrong JSON type or is out of the target's range.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                }
                .ok_or_else(|| {
                    DeError::custom(format!(
                        "expected unsigned integer, got {value:?}"
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!(
                        "{n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| {
                    DeError::custom(format!("expected integer, got {value:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!(
                        "{n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize);
deserialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single-char string, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {LEN}-element array, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => {
                map.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, as tests and diffs expect.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => {
                map.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // serde's layout for Duration: {"secs": u64, "nanos": u32}.
        let mut map = Map::new();
        map.insert("secs".to_owned(), Value::from(self.as_secs()));
        map.insert("nanos".to_owned(), Value::from(self.subsec_nanos()));
        Value::Object(map)
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => {
                let secs = u64::from_value(map.get("secs").unwrap_or(&Value::Null))
                    .map_err(|e| e.context("Duration.secs"))?;
                let nanos = u32::from_value(map.get("nanos").unwrap_or(&Value::Null))
                    .map_err(|e| e.context("Duration.nanos"))?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            other => {
                Err(DeError::custom(format!("expected {{secs, nanos}} object, got {other:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut map = Map::new();
        map.insert("b".into(), Value::from(1u32));
        map.insert("a".into(), Value::from(2u32));
        assert_eq!(map.insert("b".into(), Value::from(3u32)), Some(Value::from(1u32)));
        let keys: Vec<&String> = map.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(map.get("b"), Some(&Value::from(3u32)));
    }

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&0.25f64.to_value()).unwrap(), 0.25);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&3u8.to_value()).unwrap(), Some(3));
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u64, 0.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn duration_roundtrips() {
        let d = std::time::Duration::new(3, 250_000_000);
        assert_eq!(std::time::Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn out_of_range_ints_fail() {
        assert!(u8::from_value(&Value::from(300u64)).is_err());
        assert!(u64::from_value(&Value::from(-1i64)).is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
