//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stable since Rust 1.63), matching the call shape this workspace uses:
//! `scope(|s| { s.spawn(move |_| ...); }).expect(...)`.

/// Scoped threads.
pub mod thread {
    /// A scope handle passed to the closure given to [`scope`].
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a unit argument in
        /// place of crossbeam's nested scope handle (unused by callers that
        /// write `move |_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all threads are joined before returning.
    ///
    /// # Errors
    ///
    /// Unlike real crossbeam this never returns `Err`: a panicking child
    /// thread propagates its panic at the end of the scope (std semantics).
    /// The `Result` return type keeps call sites (`.expect(...)`) source
    /// compatible.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_disjoint_slots() {
        let mut slots: Vec<Option<usize>> = vec![None; 8];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = Some(i * i));
            }
        })
        .expect("threads do not panic");
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, Some(i * i));
        }
    }
}
