//! Offline shim for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (the simplified `Value`-based model) for the shapes this
//! workspace derives on:
//!
//! - structs with named fields        → JSON objects
//! - newtype tuple structs            → transparent (the inner value)
//! - multi-field tuple structs        → JSON arrays
//! - enums with unit variants         → `"Variant"` strings
//! - enums with struct variants       → `{"Variant": {..fields..}}`
//! - enums with newtype variants      → `{"Variant": value}`
//!
//! which matches serde's externally-tagged default representation.
//! Parsing is hand-rolled over `proc_macro::TokenTree` (no syn/quote);
//! generics and `#[serde(...)]` attributes are not supported — the
//! workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<String>),
    /// `struct S(T);` — serialized transparently.
    Newtype,
    /// `struct S(T, U);` — serialized as an array.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips `#[...]` outer attributes starting at `i`; returns the new index.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` visibility at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the field names of a named-fields body: `a: T, b: U<V, W>, ...`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde shim derive: expected field name, got {:?}", tokens[i]);
        };
        fields.push(name.to_string());
        i += 1;
        // Skip `:` then the type, up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple body: `T, U<V, W>, ...`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (i, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // A trailing comma does not start a new field.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && i + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde shim derive: expected variant name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => panic!("serde shim derive: {n}-field tuple variant {name} unsupported"),
                }
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let TokenTree::Ident(keyword) = &tokens[i] else {
        panic!("serde shim derive: expected struct/enum, got {:?}", tokens[i]);
    };
    let keyword = keyword.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde shim derive: expected type name, got {:?}", tokens[i]);
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type {name} unsupported");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            _ => Shape::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut code = String::from("let mut map = ::serde::Map::new();\n");
            for f in fields {
                code.push_str(&format!(
                    "map.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            code.push_str("::serde::Value::Object(map)");
            code
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => format!("::serde::Value::String(::std::string::String::from(\"{name}\"))"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(inner) => {{\n\
                         let mut map = ::serde::Map::new();\n\
                         map.insert(::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::to_value(inner));\n\
                         ::serde::Value::Object(map)\n}}\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut inner = ::serde::Map::new();\n\
                             {inserts}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     map.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| e.context(\"{name}.{f}\"))?,\n"
                ));
            }
            format!(
                "match value {{\n\
                 ::serde::Value::Object(map) => ::std::result::Result::Ok({name} {{\n\
                 {inits}}}),\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected object for {name}, got {{other:?}}\"))),\n}}"
            )
        }
        Shape::Newtype => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)\
             .map_err(|e| e.context(\"{name}\"))?))"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&items[{i}])\
                         .map_err(|e| e.context(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({items})),\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n}}",
                items = items.join(", ")
            )
        }
        Shape::Unit => format!(
            "match value {{\n\
             ::serde::Value::String(s) if s == \"{name}\" => \
             ::std::result::Result::Ok({name}),\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             other => ::std::result::Result::Err(::serde::DeError::custom(\
             format!(\"expected unit struct {name}, got {{other:?}}\"))),\n}}"
        ),
        Shape::Enum(variants) => {
            let unit: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.kind, VariantKind::Unit)).collect();
            let tagged: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.kind, VariantKind::Unit)).collect();

            let string_arm = if unit.is_empty() {
                format!(
                    "::serde::Value::String(other) => \
                     ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant {{other}} for {name}\"))),\n"
                )
            } else {
                let mut arms = String::new();
                for v in &unit {
                    arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n",
                        vname = v.name
                    ));
                }
                format!(
                    "::serde::Value::String(s) => match s.as_str() {{\n{arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant {{other}} for {name}\"))),\n}},\n"
                )
            };

            let object_arm = if tagged.is_empty() {
                format!(
                    "::serde::Value::Object(_) => \
                     ::std::result::Result::Err(::serde::DeError::custom(\
                     \"expected variant string for {name}, got object\".to_owned())),\n"
                )
            } else {
                let mut chain = String::new();
                for (i, v) in tagged.iter().enumerate() {
                    let vname = &v.name;
                    let keyword = if i == 0 { "if" } else { "else if" };
                    match &v.kind {
                        VariantKind::Newtype => chain.push_str(&format!(
                            "{keyword} let ::std::option::Option::Some(inner) = \
                             map.get(\"{vname}\") {{\n\
                             ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)\
                             .map_err(|e| e.context(\"{name}::{vname}\"))?))\n}}\n"
                        )),
                        VariantKind::Struct(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                inits.push_str(&format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     fields.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                     .map_err(|e| e.context(\"{name}::{vname}.{f}\"))?,\n"
                                ));
                            }
                            chain.push_str(&format!(
                                "{keyword} let ::std::option::Option::Some(inner) = \
                                 map.get(\"{vname}\") {{\n\
                                 match inner {{\n\
                                 ::serde::Value::Object(fields) => \
                                 ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n\
                                 other => ::std::result::Result::Err(\
                                 ::serde::DeError::custom(format!(\
                                 \"expected object for variant {name}::{vname}, \
                                 got {{other:?}}\"))),\n}}\n}}\n"
                            ));
                        }
                        VariantKind::Unit => unreachable!("filtered above"),
                    }
                }
                format!(
                    "::serde::Value::Object(map) => {{\n{chain}\
                     else {{\n::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant object for {name}: {{map:?}}\")))\n}}\n}}\n"
                )
            };

            format!(
                "match value {{\n{string_arm}{object_arm}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected string or object for {name}, got {{other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("serde shim derive: generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
